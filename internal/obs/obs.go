// Package obs is the reproduction's stdlib-only observability layer: a
// nesting span tracer for per-stage wall time and allocation accounting, a
// process-wide metrics registry (counters, gauges, fixed-bucket histograms)
// exported via expvar, run manifests carrying provenance for every pipeline
// run, and an opt-in HTTP debug endpoint serving pprof, expvar, and a live
// span/progress page.
//
// Instrumentation is zero-cost when disabled: a nil *Tracer hands out nil
// *Span values whose methods are all no-ops, and metrics are single atomic
// operations. Nothing in this package draws randomness or feeds back into
// experiment results, so equal seeds reproduce identical results bit for bit
// with observability on or off.
package obs

import (
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Tracer collects a forest of spans for one run. The zero value is NOT
// ready; use NewTracer. A nil *Tracer is the disabled tracer: Start returns
// a nil span and no state is kept.
type Tracer struct {
	mu    sync.Mutex
	roots []*Span
	// cur is the innermost span that has been started but not ended;
	// Start nests new spans under it. Pipeline stages run sequentially, so
	// a single cursor reproduces the call tree.
	cur *Span
	// sink, when set, receives live span_start/span_end events and funnel
	// snapshots whenever a root span ends (the -events JSONL stream).
	sink atomic.Pointer[EventSink]
}

// NewTracer returns an enabled tracer.
func NewTracer() *Tracer { return &Tracer{} }

// SetSink attaches a live event stream: every Start/Child/End emits a span
// event, and each root span's End additionally emits the funnel snapshots
// that changed. Pass nil to detach. Safe on a nil tracer.
func (t *Tracer) SetSink(s *EventSink) {
	if t != nil {
		t.sink.Store(s)
	}
}

// eventSink returns the attached sink (nil when detached or nil tracer).
func (t *Tracer) eventSink() *EventSink {
	if t == nil {
		return nil
	}
	return t.sink.Load()
}

// Start opens a span. If another span is open, the new span becomes its
// child; otherwise it is a root. Safe on a nil tracer (returns nil).
func (t *Tracer) Start(name string) *Span {
	if t == nil {
		return nil
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s := &Span{
		tracer:       t,
		name:         name,
		start:        time.Now(),
		startAllocs:  ms.TotalAlloc,
		startMallocs: ms.Mallocs,
	}
	t.mu.Lock()
	s.parent = t.cur
	if s.parent != nil {
		s.parent.children = append(s.parent.children, s)
	} else {
		t.roots = append(t.roots, s)
	}
	t.cur = s
	t.mu.Unlock()
	t.eventSink().Emit(Event{Type: "span_start", Span: s.Path()})
	return s
}

// Roots returns the root spans recorded so far.
func (t *Tracer) Roots() []*Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]*Span(nil), t.roots...)
}

// Span is one timed stage. All methods are safe on a nil receiver, so
// instrumented code never checks whether tracing is enabled.
type Span struct {
	tracer *Tracer
	parent *Span
	name   string
	start  time.Time

	startAllocs  uint64
	startMallocs uint64

	mu       sync.Mutex
	children []*Span
	attrs    []Attr
	dur      time.Duration
	allocB   uint64
	mallocs  uint64
	ended    bool
}

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string
	Value any
}

// Name returns the span name ("" for nil spans).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// SetAttr records a key/value attribute on the span.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
}

// Child opens a nested span without touching the tracer cursor — for code
// that holds its parent span explicitly (e.g. parallel stages).
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	c := &Span{
		tracer:       s.tracer,
		parent:       s,
		name:         name,
		start:        time.Now(),
		startAllocs:  ms.TotalAlloc,
		startMallocs: ms.Mallocs,
	}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	if t := s.tracer; t != nil {
		t.eventSink().Emit(Event{Type: "span_start", Span: c.Path()})
	}
	return c
}

// Path returns the slash-joined span path from its root ("" for nil spans).
func (s *Span) Path() string {
	if s == nil {
		return ""
	}
	var names []string
	for c := s; c != nil; c = c.parent {
		names = append(names, c.name)
	}
	for i, j := 0, len(names)-1; i < j; i, j = i+1, j-1 {
		names[i], names[j] = names[j], names[i]
	}
	return strings.Join(names, "/")
}

// End closes the span, recording its duration and allocation delta. Ending
// twice is a no-op. If the span is the tracer's cursor, the cursor pops back
// to its parent.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s.ended = true
	s.dur = time.Since(s.start)
	s.allocB = ms.TotalAlloc - s.startAllocs
	s.mallocs = ms.Mallocs - s.startMallocs
	var attrs map[string]any
	if len(s.attrs) > 0 {
		attrs = make(map[string]any, len(s.attrs))
		for _, a := range s.attrs {
			attrs[a.Key] = a.Value
		}
	}
	s.mu.Unlock()

	if t := s.tracer; t != nil {
		t.mu.Lock()
		// Pop the cursor past this span even if children were left open.
		for c := t.cur; c != nil; c = c.parent {
			if c == s {
				t.cur = s.parent
				break
			}
		}
		t.mu.Unlock()
		if sink := t.eventSink(); sink != nil {
			sink.Emit(Event{
				Type: "span_end", Span: s.Path(),
				DurMS:      float64(s.dur) / float64(time.Millisecond),
				AllocBytes: s.allocB,
				Attrs:      attrs,
			})
			if s.parent == nil {
				// A top-level stage finished: stream whichever funnel
				// accounting it moved.
				sink.EmitFunnels(Default)
			}
		}
	}
}

// Elapsed returns the recorded duration for ended spans, or the live
// duration for open ones.
func (s *Span) Elapsed() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return s.dur
	}
	return time.Since(s.start)
}

// SpanSnapshot is an immutable copy of a span subtree, used by the manifest
// and the live debug page.
type SpanSnapshot struct {
	Name       string         `json:"name"`
	StartMS    float64        `json:"start_ms"` // offset from the snapshot origin
	DurMS      float64        `json:"dur_ms"`
	Ended      bool           `json:"ended"`
	AllocBytes uint64         `json:"alloc_bytes"`
	Mallocs    uint64         `json:"mallocs"`
	Attrs      map[string]any `json:"attrs,omitempty"`
	Children   []SpanSnapshot `json:"children,omitempty"`
}

// Snapshot copies the span forest. origin anchors StartMS; pass the run's
// start time (or the zero time to anchor at the first root span).
func (t *Tracer) Snapshot(origin time.Time) []SpanSnapshot {
	if t == nil {
		return nil
	}
	roots := t.Roots()
	if origin.IsZero() && len(roots) > 0 {
		origin = roots[0].start
	}
	out := make([]SpanSnapshot, 0, len(roots))
	for _, r := range roots {
		out = append(out, r.snapshot(origin))
	}
	return out
}

func (s *Span) snapshot(origin time.Time) SpanSnapshot {
	s.mu.Lock()
	snap := SpanSnapshot{
		Name:       s.name,
		StartMS:    float64(s.start.Sub(origin)) / float64(time.Millisecond),
		Ended:      s.ended,
		AllocBytes: s.allocB,
		Mallocs:    s.mallocs,
	}
	if s.ended {
		snap.DurMS = float64(s.dur) / float64(time.Millisecond)
	} else {
		snap.DurMS = float64(time.Since(s.start)) / float64(time.Millisecond)
	}
	if len(s.attrs) > 0 {
		snap.Attrs = make(map[string]any, len(s.attrs))
		for _, a := range s.attrs {
			snap.Attrs[a.Key] = a.Value
		}
	}
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for _, c := range children {
		snap.Children = append(snap.Children, c.snapshot(origin))
	}
	return snap
}

// StageCount returns the total number of named spans in the forest.
func StageCount(spans []SpanSnapshot) int {
	n := 0
	for _, s := range spans {
		n += 1 + StageCount(s.Children)
	}
	return n
}
