// Package obs is the reproduction's stdlib-only observability layer: a
// nesting span tracer for per-stage wall time and allocation accounting, a
// process-wide metrics registry (counters, gauges, fixed-bucket histograms)
// exported via expvar, run manifests carrying provenance for every pipeline
// run, and an opt-in HTTP debug endpoint serving pprof, expvar, and a live
// span/progress page.
//
// Instrumentation is zero-cost when disabled: a nil *Tracer hands out nil
// *Span values whose methods are all no-ops, and metrics are single atomic
// operations. Nothing in this package draws randomness or feeds back into
// experiment results, so equal seeds reproduce identical results bit for bit
// with observability on or off.
package obs

import (
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Tracer collects a forest of spans for one run. The zero value is NOT
// ready; use NewTracer. A nil *Tracer is the disabled tracer: Start returns
// a nil span and no state is kept.
type Tracer struct {
	mu    sync.Mutex
	roots []*Span
	// cur is the innermost span that has been started but not ended;
	// Start nests new spans under it. Pipeline stages run sequentially, so
	// a single cursor reproduces the call tree.
	cur *Span
	// sink, when set, receives live span_start/span_end events and funnel
	// snapshots whenever a root span ends (the -events JSONL stream).
	sink atomic.Pointer[EventSink]

	// epoch anchors the timeline: instants, marks and the trace export
	// measure offsets from it.
	epoch time.Time
	// timeline, when enabled, records instant events (injected faults) and
	// counter marks (funnel / chaos counter movement at root-span ends) for
	// the -trace export. Off by default so hot paths pay one atomic load.
	timeline atomic.Bool
	tlMu     sync.Mutex
	instants []Instant
	marks    []TimelineMark
	// instCount / instSuppressed bound the recording: after
	// maxInstantsPerName events of one name, further ones only count. A
	// heavy chaos profile fires hundreds of thousands of per-probe faults —
	// unbounded recording would swell a tiny run's trace past 50MB.
	instCount      map[string]int
	instSuppressed map[string]int64
	// lastFunnels / lastCounters dedupe marks: only moved counters re-mark.
	lastFunnels  map[string]FunnelSnapshot
	lastCounters map[string]float64
}

// NewTracer returns an enabled tracer.
func NewTracer() *Tracer { return &Tracer{epoch: time.Now()} }

// Epoch returns the tracer's timeline origin (zero for nil tracers).
func (t *Tracer) Epoch() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.epoch
}

// EnableTimeline turns on instant-event and counter-mark recording (the raw
// material of the -trace export). Recording is observability-only and never
// feeds back into experiment results. Safe on a nil tracer.
func (t *Tracer) EnableTimeline() {
	if t != nil {
		t.timeline.Store(true)
	}
}

// TimelineEnabled reports whether instant recording is on (false for nil).
func (t *Tracer) TimelineEnabled() bool {
	return t != nil && t.timeline.Load()
}

// Instant is one point event on the timeline — an injected chaos fault, a
// retry exhaustion, any caller-declared moment worth seeing in the trace.
type Instant struct {
	Name  string         `json:"name"`
	AtMS  float64        `json:"at_ms"` // offset from the tracer epoch
	Attrs map[string]any `json:"attrs,omitempty"`
}

// maxInstantsPerName caps recorded instants per event name; the excess is
// tallied in InstantsSuppressed and noted in the trace's otherData. The first
// thousand of each fault kind show the timeline shape; the rest would only
// bloat the file.
const maxInstantsPerName = 1000

// Instant records a point event when the timeline is enabled; otherwise it
// is a no-op (one atomic load). Safe on a nil tracer and from any goroutine.
func (t *Tracer) Instant(name string, attrs map[string]any) {
	if !t.TimelineEnabled() {
		return
	}
	at := float64(time.Since(t.epoch)) / float64(time.Millisecond)
	t.tlMu.Lock()
	defer t.tlMu.Unlock()
	if t.instCount == nil {
		t.instCount = make(map[string]int)
		t.instSuppressed = make(map[string]int64)
	}
	if t.instCount[name] >= maxInstantsPerName {
		t.instSuppressed[name]++
		return
	}
	t.instCount[name]++
	t.instants = append(t.instants, Instant{Name: name, AtMS: at, Attrs: attrs})
}

// Instants copies the recorded instant events.
func (t *Tracer) Instants() []Instant {
	if t == nil {
		return nil
	}
	t.tlMu.Lock()
	defer t.tlMu.Unlock()
	return append([]Instant(nil), t.instants...)
}

// InstantsSuppressed reports, per event name, how many instants were counted
// but not recorded once the per-name cap was reached. Empty when nothing was
// suppressed.
func (t *Tracer) InstantsSuppressed() map[string]int64 {
	if t == nil {
		return nil
	}
	t.tlMu.Lock()
	defer t.tlMu.Unlock()
	out := make(map[string]int64, len(t.instSuppressed))
	for k, v := range t.instSuppressed {
		out[k] = v
	}
	return out
}

// TimelineMark is one sample of the run's moving counters, taken whenever a
// root span ends: the funnels whose accounting changed since the previous
// mark plus the chaos.* counters that moved. The trace export renders marks
// as Perfetto counter tracks.
type TimelineMark struct {
	AtMS     float64            `json:"at_ms"`
	Funnels  []FunnelSnapshot   `json:"funnels,omitempty"`
	Counters map[string]float64 `json:"counters,omitempty"`
}

// Marks copies the recorded counter marks.
func (t *Tracer) Marks() []TimelineMark {
	if t == nil {
		return nil
	}
	t.tlMu.Lock()
	defer t.tlMu.Unlock()
	return append([]TimelineMark(nil), t.marks...)
}

// recordMark samples the Default registry's funnels and chaos counters,
// appending a mark when anything moved since the last one.
func (t *Tracer) recordMark() {
	if !t.TimelineEnabled() {
		return
	}
	at := float64(time.Since(t.epoch)) / float64(time.Millisecond)
	snaps := Default.FunnelSnapshots()
	metrics := Default.Snapshot()
	t.tlMu.Lock()
	defer t.tlMu.Unlock()
	if t.lastFunnels == nil {
		t.lastFunnels = make(map[string]FunnelSnapshot)
		t.lastCounters = make(map[string]float64)
	}
	mark := TimelineMark{AtMS: at}
	for _, snap := range snaps {
		prev, seen := t.lastFunnels[snap.Name]
		if !seen || prev.In != snap.In || prev.Out != snap.Out || prev.Dropped() != snap.Dropped() {
			t.lastFunnels[snap.Name] = snap
			mark.Funnels = append(mark.Funnels, snap)
		}
	}
	for name, mv := range metrics {
		if mv.Type != "counter" || !strings.HasPrefix(name, "chaos.") {
			continue
		}
		if prev, seen := t.lastCounters[name]; !seen || prev != mv.Value {
			t.lastCounters[name] = mv.Value
			if mark.Counters == nil {
				mark.Counters = make(map[string]float64)
			}
			mark.Counters[name] = mv.Value
		}
	}
	if len(mark.Funnels) > 0 || len(mark.Counters) > 0 {
		t.marks = append(t.marks, mark)
	}
}

// SetSink attaches a live event stream: every Start/Child/End emits a span
// event, and each root span's End additionally emits the funnel snapshots
// that changed. Pass nil to detach. Safe on a nil tracer.
func (t *Tracer) SetSink(s *EventSink) {
	if t != nil {
		t.sink.Store(s)
	}
}

// eventSink returns the attached sink (nil when detached or nil tracer).
func (t *Tracer) eventSink() *EventSink {
	if t == nil {
		return nil
	}
	return t.sink.Load()
}

// Start opens a span. If another span is open, the new span becomes its
// child; otherwise it is a root. Safe on a nil tracer (returns nil).
func (t *Tracer) Start(name string) *Span {
	if t == nil {
		return nil
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s := &Span{
		tracer:       t,
		name:         name,
		start:        time.Now(),
		startAllocs:  ms.TotalAlloc,
		startMallocs: ms.Mallocs,
	}
	t.mu.Lock()
	s.parent = t.cur
	if s.parent != nil {
		s.parent.children = append(s.parent.children, s)
	} else {
		t.roots = append(t.roots, s)
	}
	t.cur = s
	t.mu.Unlock()
	t.eventSink().Emit(Event{Type: "span_start", Span: s.Path()})
	return s
}

// Roots returns the root spans recorded so far.
func (t *Tracer) Roots() []*Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]*Span(nil), t.roots...)
}

// Span is one timed stage. All methods are safe on a nil receiver, so
// instrumented code never checks whether tracing is enabled.
type Span struct {
	tracer *Tracer
	parent *Span
	name   string
	start  time.Time

	startAllocs  uint64
	startMallocs uint64

	mu       sync.Mutex
	children []*Span
	attrs    []Attr
	dur      time.Duration
	allocB   uint64
	mallocs  uint64
	ended    bool
}

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string
	Value any
}

// Name returns the span name ("" for nil spans).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// SetAttr records a key/value attribute on the span.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
}

// Child opens a nested span without touching the tracer cursor — for code
// that holds its parent span explicitly (e.g. parallel stages).
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	c := &Span{
		tracer:       s.tracer,
		parent:       s,
		name:         name,
		start:        time.Now(),
		startAllocs:  ms.TotalAlloc,
		startMallocs: ms.Mallocs,
	}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	if t := s.tracer; t != nil {
		t.eventSink().Emit(Event{Type: "span_start", Span: c.Path()})
	}
	return c
}

// Path returns the slash-joined span path from its root ("" for nil spans).
func (s *Span) Path() string {
	if s == nil {
		return ""
	}
	var names []string
	for c := s; c != nil; c = c.parent {
		names = append(names, c.name)
	}
	for i, j := 0, len(names)-1; i < j; i, j = i+1, j-1 {
		names[i], names[j] = names[j], names[i]
	}
	return strings.Join(names, "/")
}

// End closes the span, recording its duration and allocation delta. Ending
// twice is a no-op. If the span is the tracer's cursor, the cursor pops back
// to its parent.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s.ended = true
	s.dur = time.Since(s.start)
	s.allocB = ms.TotalAlloc - s.startAllocs
	s.mallocs = ms.Mallocs - s.startMallocs
	var attrs map[string]any
	if len(s.attrs) > 0 {
		attrs = make(map[string]any, len(s.attrs))
		for _, a := range s.attrs {
			attrs[a.Key] = a.Value
		}
	}
	s.mu.Unlock()

	if t := s.tracer; t != nil {
		t.mu.Lock()
		// Pop the cursor past this span even if children were left open.
		for c := t.cur; c != nil; c = c.parent {
			if c == s {
				t.cur = s.parent
				break
			}
		}
		t.mu.Unlock()
		if sink := t.eventSink(); sink != nil {
			sink.Emit(Event{
				Type: "span_end", Span: s.Path(),
				DurMS:      float64(s.dur) / float64(time.Millisecond),
				AllocBytes: s.allocB,
				Attrs:      attrs,
			})
			if s.parent == nil {
				// A top-level stage finished: stream whichever funnel
				// accounting it moved.
				sink.EmitFunnels(Default)
			}
		}
		if s.parent == nil {
			// Sample the moving counters for the -trace counter tracks.
			t.recordMark()
		}
	}
}

// Elapsed returns the recorded duration for ended spans, or the live
// duration for open ones.
func (s *Span) Elapsed() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return s.dur
	}
	return time.Since(s.start)
}

// SpanSnapshot is an immutable copy of a span subtree, used by the manifest
// and the live debug page.
type SpanSnapshot struct {
	Name       string         `json:"name"`
	StartMS    float64        `json:"start_ms"` // offset from the snapshot origin
	DurMS      float64        `json:"dur_ms"`
	Ended      bool           `json:"ended"`
	AllocBytes uint64         `json:"alloc_bytes"`
	Mallocs    uint64         `json:"mallocs"`
	Attrs      map[string]any `json:"attrs,omitempty"`
	Children   []SpanSnapshot `json:"children,omitempty"`
}

// Snapshot copies the span forest. origin anchors StartMS; pass the run's
// start time (or the zero time to anchor at the first root span).
func (t *Tracer) Snapshot(origin time.Time) []SpanSnapshot {
	if t == nil {
		return nil
	}
	roots := t.Roots()
	if origin.IsZero() && len(roots) > 0 {
		origin = roots[0].start
	}
	out := make([]SpanSnapshot, 0, len(roots))
	for _, r := range roots {
		out = append(out, r.snapshot(origin))
	}
	return out
}

func (s *Span) snapshot(origin time.Time) SpanSnapshot {
	s.mu.Lock()
	snap := SpanSnapshot{
		Name:       s.name,
		StartMS:    float64(s.start.Sub(origin)) / float64(time.Millisecond),
		Ended:      s.ended,
		AllocBytes: s.allocB,
		Mallocs:    s.mallocs,
	}
	if s.ended {
		snap.DurMS = float64(s.dur) / float64(time.Millisecond)
	} else {
		snap.DurMS = float64(time.Since(s.start)) / float64(time.Millisecond)
	}
	if len(s.attrs) > 0 {
		snap.Attrs = make(map[string]any, len(s.attrs))
		for _, a := range s.attrs {
			snap.Attrs[a.Key] = a.Value
		}
	}
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for _, c := range children {
		snap.Children = append(snap.Children, c.snapshot(origin))
	}
	return snap
}

// StageCount returns the total number of named spans in the forest.
func StageCount(spans []SpanSnapshot) int {
	n := 0
	for _, s := range spans {
		n += 1 + StageCount(s.Children)
	}
	return n
}
