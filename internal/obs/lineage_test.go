package obs

import (
	"math/rand"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

// TestLineageNilSafety: every method on a nil recorder must no-op — the
// default-off contract call sites rely on.
func TestLineageNilSafety(t *testing.T) {
	var r *LineageRecorder
	r.CountIn("s", 1)
	r.CountKept("s", 1)
	r.CountDrop("s", "reason", 1)
	r.Record("s", "g", "subj", LineageKept, "reason", func() []LineageKV {
		t.Fatal("evidence builder ran on a nil recorder")
		return nil
	})
	if got := r.Digest(); got != "" {
		t.Fatalf("nil digest = %q, want empty", got)
	}
	if got := r.Records(); got != nil {
		t.Fatalf("nil records = %v, want nil", got)
	}
	if got := r.StageCounts(); got != nil {
		t.Fatalf("nil stage counts = %v, want nil", got)
	}
}

// TestLineageAdmissionOrderInvariance: the retained sample is a bounded
// min-set over the offered identities, so any arrival order — any worker
// interleaving — admits the same records and yields the same digest.
func TestLineageAdmissionOrderInvariance(t *testing.T) {
	type offer struct{ group, subject, reason string }
	var offers []offer
	for g := 0; g < 3; g++ {
		for s := 0; s < 40; s++ {
			offers = append(offers, offer{
				group:   "isp=" + string(rune('A'+g)),
				subject: "10.0.0." + string(rune('0'+s%10)) + string(rune('0'+s/10)),
				reason:  "r" + string(rune('0'+s%3)),
			})
		}
	}
	run := func(perm []int) *LineageRecorder {
		r := NewLineageRecorder()
		for _, i := range perm {
			o := offers[i]
			r.Record("stage", o.group, o.subject, LineageKept, o.reason, func() []LineageKV {
				return []LineageKV{{K: "subject", V: o.subject}}
			})
		}
		return r
	}
	base := make([]int, len(offers))
	for i := range base {
		base[i] = i
	}
	want := run(base)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		perm := rng.Perm(len(offers))
		got := run(perm)
		if got.Digest() != want.Digest() {
			t.Fatalf("trial %d: digest varies with arrival order", trial)
		}
		if !reflect.DeepEqual(got.Records(), want.Records()) {
			t.Fatalf("trial %d: records vary with arrival order", trial)
		}
	}
	// The default cap bounds each (stage, group)'s sample.
	perGroup := make(map[string]int)
	for _, rec := range want.Records() {
		perGroup[rec.Group]++
	}
	for g, n := range perGroup {
		if n > DefaultLineageCap {
			t.Fatalf("group %q retained %d records, cap is %d", g, n, DefaultLineageCap)
		}
	}
}

// TestLineageDedupe: identically keyed duplicates collapse to one record and
// never double-build evidence once admitted.
func TestLineageDedupe(t *testing.T) {
	r := NewLineageRecorder()
	builds := 0
	for i := 0; i < 5; i++ {
		r.Record("s", "g", "subj", LineageKept, "reason", func() []LineageKV {
			builds++
			return []LineageKV{{K: "k", V: "v"}}
		})
	}
	if got := len(r.Records()); got != 1 {
		t.Fatalf("duplicates produced %d records, want 1", got)
	}
	if builds != 1 {
		t.Fatalf("evidence built %d times for one identity, want 1", builds)
	}
}

// TestLineageSetCap: a raised cap admits more records per group.
func TestLineageSetCap(t *testing.T) {
	r := NewLineageRecorder()
	r.SetCap("s", 5)
	for i := 0; i < 10; i++ {
		subj := "subj" + string(rune('0'+i))
		r.Record("s", "g", subj, LineageKept, "", nil)
	}
	if got := len(r.Records()); got != 5 {
		t.Fatalf("cap 5 retained %d records", got)
	}
}

// TestLineageStageCounts: counts reconcile and render sorted.
func TestLineageStageCounts(t *testing.T) {
	r := NewLineageRecorder()
	r.CountIn("b.stage", 10)
	r.CountKept("b.stage", 7)
	r.CountDrop("b.stage", "x", 2)
	r.CountDrop("b.stage", "a", 1)
	r.CountIn("a.stage", 1)
	r.CountKept("a.stage", 1)
	sc := r.StageCounts()
	if len(sc) != 2 || sc[0].Stage != "a.stage" || sc[1].Stage != "b.stage" {
		t.Fatalf("stage counts unsorted or wrong: %+v", sc)
	}
	b := sc[1]
	if !b.Balanced() || b.Dropped() != 3 || b.DropN("a") != 1 || b.DropN("x") != 2 {
		t.Fatalf("b.stage accounting wrong: %+v", b)
	}
	if b.Drops[0].Reason != "a" {
		t.Fatalf("drops unsorted: %+v", b.Drops)
	}
}

// TestLineageJSONLRoundTrip: write → read preserves records and verifies the
// digest; tampering with any line is detected.
func TestLineageJSONLRoundTrip(t *testing.T) {
	r := NewLineageRecorder()
	r.CountIn("s", 2)
	r.CountKept("s", 1)
	r.CountDrop("s", "bad", 1)
	r.Record("s", "g", "10.0.0.1", LineageKept, "ok", func() []LineageKV {
		return []LineageKV{{K: "why", V: "matched"}}
	})
	r.Record("s", "g", "10.0.0.2", LineageDropped, "bad", nil)

	path := filepath.Join(t.TempDir(), "lineage.jsonl")
	if err := WriteLineageFile(path, r); err != nil {
		t.Fatal(err)
	}
	f, err := ReadLineageFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(f.Records, r.Records()) {
		t.Fatalf("round trip changed records:\n%+v\nvs\n%+v", f.Records, r.Records())
	}
	if f.Summary.Digest != r.Digest() {
		t.Fatalf("summary digest %q != recorder digest %q", f.Summary.Digest, r.Digest())
	}
	if len(f.Summary.Stages) != 1 || !f.Summary.Stages[0].Balanced() {
		t.Fatalf("summary stages wrong: %+v", f.Summary.Stages)
	}

	// Flip one evidence byte: the digest check must fail loudly.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	tampered := strings.Replace(string(raw), "matched", "matchee", 1)
	if tampered == string(raw) {
		t.Fatal("tamper target not found")
	}
	if err := os.WriteFile(path, []byte(tampered), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadLineageFile(path); err == nil {
		t.Fatal("tampered lineage file read back without error")
	}

	// A capture missing its summary line is an error, not a silent success.
	lines := strings.Split(strings.TrimSuffix(string(raw), "\n"), "\n")
	noSummary := strings.Join(lines[:len(lines)-1], "\n") + "\n"
	if err := os.WriteFile(path, []byte(noSummary), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadLineageFile(path); err == nil {
		t.Fatal("summary-less lineage file read back without error")
	}
}

// TestLineageManifestDiff: runsdiff treats lineage digests and per-stage
// counts as determinism-relevant drift.
func TestLineageManifestDiff(t *testing.T) {
	base := func() *Manifest {
		return &Manifest{
			LineageDigest: "aaaa",
			Lineage: []LineageStageCount{{
				Stage: "s", In: 10, Kept: 8,
				Drops: []FunnelDrop{{Reason: "r", N: 2}},
			}},
		}
	}
	if res := CompareManifests(base(), base(), DiffOptions{}); res.HasDrift() {
		t.Fatalf("equal lineage reported drift: %v", res.Drift)
	}
	digest := base()
	digest.LineageDigest = "bbbb"
	if res := CompareManifests(base(), digest, DiffOptions{}); !res.HasDrift() {
		t.Fatal("digest mismatch not reported as drift")
	}
	counts := base()
	counts.Lineage[0].Drops[0].N = 3
	if res := CompareManifests(base(), counts, DiffOptions{}); !res.HasDrift() {
		t.Fatal("per-reason count mismatch not reported as drift")
	}
}

// TestLineageManifestBuild: an active recorder lands in the manifest; none
// leaves the fields empty (so lineage-off manifests stay golden-identical).
func TestLineageManifestBuild(t *testing.T) {
	SetLineage(nil)
	m := BuildManifest("test", 42, "tiny", NewTracer(), time.Now())
	if m.LineageDigest != "" || m.Lineage != nil {
		t.Fatalf("lineage-off manifest carries lineage fields: %q %v", m.LineageDigest, m.Lineage)
	}
	r := NewLineageRecorder()
	r.CountIn("s", 1)
	r.CountKept("s", 1)
	SetLineage(r)
	defer SetLineage(nil)
	m = BuildManifest("test", 42, "tiny", NewTracer(), time.Now())
	if m.LineageDigest != r.Digest() || len(m.Lineage) != 1 {
		t.Fatalf("lineage-on manifest missing lineage: %q %v", m.LineageDigest, m.Lineage)
	}
}

// TestLineageDebugPage: the /debug/obs lineage section renders and escapes
// caller-supplied strings.
func TestLineageDebugPage(t *testing.T) {
	r := NewLineageRecorder()
	r.CountIn("s", 1)
	r.CountKept("s", 1)
	r.Record("s", "g", `<script>alert(1)</script>`, LineageKept, "ok", nil)
	SetLineage(r)
	defer SetLineage(nil)

	rec := httptest.NewRecorder()
	writeObsPage(rec, NewTracer(), time.Now())
	body := rec.Body.String()
	if !strings.Contains(body, "<h2>lineage</h2>") {
		t.Fatal("lineage section missing from /debug/obs")
	}
	if strings.Contains(body, "<script>alert(1)</script>") {
		t.Fatal("lineage subject rendered unescaped")
	}
	if !strings.Contains(body, "&lt;script&gt;") {
		t.Fatal("escaped lineage subject missing from page")
	}
}

// TestLineageMarkdown: the report appendix renders the accounting table and
// a bounded sample per stage.
func TestLineageMarkdown(t *testing.T) {
	if LineageMarkdown(nil, 2) != "" {
		t.Fatal("nil recorder rendered a non-empty appendix")
	}
	r := NewLineageRecorder()
	r.CountIn("s", 3)
	r.CountKept("s", 2)
	r.CountDrop("s", "bad", 1)
	for i := 0; i < 3; i++ {
		subj := "10.0.0." + string(rune('1'+i))
		r.Record("s", "g"+string(rune('0'+i)), subj, LineageKept, "ok", nil)
	}
	md := LineageMarkdown(r, 1)
	if !strings.Contains(md, "| s | 3 | 2 | 1 | bad=1 |") {
		t.Fatalf("accounting row missing:\n%s", md)
	}
	if got := strings.Count(md, "- `10.0.0."); got != 1 {
		t.Fatalf("sample not bounded to 1 per stage (got %d):\n%s", got, md)
	}
}

// TestLazyRegistration: the shared lazy helper registers exactly once, on
// first use, and is idempotent against the registry.
func TestLazyRegistration(t *testing.T) {
	lc := NewLazyCounter("lazytest.counter", "test")
	c1, c2 := lc.Get(), lc.Get()
	if c1 == nil || c1 != c2 {
		t.Fatal("LazyCounter.Get not stable")
	}
	c1.Inc()
	if got := NewCounter("lazytest.counter", "test"); got != c1 {
		t.Fatal("lazy counter not registered in the default registry")
	}
	lf := NewLazyFunnel("lazytest.funnel", "test")
	f1, f2 := lf.Get(), lf.Get()
	if f1 == nil || f1 != f2 {
		t.Fatal("LazyFunnel.Get not stable")
	}
	f1.In(1)
	if got := NewFunnel("lazytest.funnel", "test"); got != f1 {
		t.Fatal("lazy funnel not registered in the default registry")
	}
}
