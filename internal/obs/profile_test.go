package obs

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

// syntheticForest is one root stage with a sequential prelude, a two-worker
// parallel region, and a sequential tail — the shape every pipeline stage
// takes — with hand-picked times so each profile quantity has an exact
// expected value.
func syntheticForest() []SpanSnapshot {
	return []SpanSnapshot{{
		Name: "stage", StartMS: 0, DurMS: 100, Ended: true,
		Children: []SpanSnapshot{
			{Name: "prep", StartMS: 0, DurMS: 20, Ended: true},
			{Name: "r/worker-0", StartMS: 20, DurMS: 50, Ended: true,
				Attrs: map[string]any{"worker": 0, "busy_ms": 45.0, "idle_ms": 5.0, "tasks": 5}},
			{Name: "r/worker-1", StartMS: 22, DurMS: 60, Ended: true,
				Attrs: map[string]any{"worker": 1, "busy_ms": 55.0, "idle_ms": 5.0, "tasks": 7}},
			{Name: "post", StartMS: 85, DurMS: 10, Ended: true},
		},
	}}
}

func TestBuildProfileCriticalPath(t *testing.T) {
	p := BuildProfile(syntheticForest(), 10)

	if p.WallMS != 100 {
		t.Fatalf("WallMS = %g, want 100", p.WallMS)
	}
	// Children cover [0,20] ∪ [20,82] ∪ [85,95] = 92ms, so the root keeps 8ms
	// exclusive; the concurrent workers contribute only the slower lane (60).
	want := 8.0 + 20 + 60 + 10
	if math.Abs(p.CriticalPathMS-want) > 1e-9 {
		t.Fatalf("CriticalPathMS = %g, want %g", p.CriticalPathMS, want)
	}

	// The invariant REPORT.md quotes: the step self-times sum to the total.
	sum := 0.0
	var paths []string
	for _, st := range p.CriticalPath {
		sum += st.SelfMS
		paths = append(paths, st.Path)
	}
	if math.Abs(sum-p.CriticalPathMS) > 1e-9 {
		t.Fatalf("Σ steps = %g != CriticalPathMS %g", sum, p.CriticalPathMS)
	}
	joined := strings.Join(paths, " ")
	if !strings.Contains(joined, "stage/r/worker-1") {
		t.Fatalf("critical path skipped the slow worker lane: %v", paths)
	}
	if strings.Contains(joined, "worker-0") {
		t.Fatalf("critical path included the fast lane of a concurrent cluster: %v", paths)
	}
}

func TestBuildProfileRegions(t *testing.T) {
	p := BuildProfile(syntheticForest(), 10)
	if len(p.Regions) != 1 {
		t.Fatalf("regions = %+v, want exactly one", p.Regions)
	}
	r := p.Regions[0]
	if r.Name != "r" || r.Workers != 2 || r.Tasks != 12 {
		t.Fatalf("region = %+v, want name=r workers=2 tasks=12", r)
	}
	if r.BusyMS != 100 || r.LaneMS != 110 {
		t.Fatalf("region busy/lane = %g/%g, want 100/110", r.BusyMS, r.LaneMS)
	}
	if math.Abs(r.Efficiency-100.0/110.0) > 1e-9 {
		t.Fatalf("efficiency = %g, want %g", r.Efficiency, 100.0/110.0)
	}
}

func TestBuildProfileSelfTimeRanking(t *testing.T) {
	p := BuildProfile(syntheticForest(), 3)
	if len(p.SelfTimes) != 3 {
		t.Fatalf("topN not applied: got %d entries", len(p.SelfTimes))
	}
	for i := 1; i < len(p.SelfTimes); i++ {
		if p.SelfTimes[i].SelfMS > p.SelfTimes[i-1].SelfMS {
			t.Fatalf("self-time ranking not descending: %+v", p.SelfTimes)
		}
	}
	if p.SelfTimes[0].Path != "stage/r/worker-1" || p.SelfTimes[0].SelfMS != 60 {
		t.Fatalf("top self-time = %+v, want stage/r/worker-1 at 60ms", p.SelfTimes[0])
	}
}

// TestBuildProfileSequentialRoots: root stages are sequential by the pipeline
// contract, so wall and critical path accumulate across roots.
func TestBuildProfileSequentialRoots(t *testing.T) {
	stages := []SpanSnapshot{
		{Name: "a", StartMS: 0, DurMS: 30, Ended: true},
		{Name: "b", StartMS: 30, DurMS: 70, Ended: true},
	}
	p := BuildProfile(stages, 10)
	if p.WallMS != 100 || p.CriticalPathMS != 100 {
		t.Fatalf("wall/critical = %g/%g, want 100/100", p.WallMS, p.CriticalPathMS)
	}
}

func TestBuildProfileEmpty(t *testing.T) {
	p := BuildProfile(nil, 10)
	if p.WallMS != 0 || len(p.CriticalPath) != 0 || len(p.Regions) != 0 {
		t.Fatalf("empty forest produced a non-empty profile: %+v", p)
	}
}

// TestProfileJSONRoundTrip: the manifest's profile block must survive a JSON
// round trip with the worker attrs decoded as float64 (how manifests come
// back from disk) still aggregating identically.
func TestProfileJSONRoundTrip(t *testing.T) {
	direct := BuildProfile(syntheticForest(), 10)

	data, err := json.Marshal(syntheticForest())
	if err != nil {
		t.Fatal(err)
	}
	var decoded []SpanSnapshot
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	rebuilt := BuildProfile(decoded, 10)

	if rebuilt.CriticalPathMS != direct.CriticalPathMS {
		t.Fatalf("critical path changed across JSON: %g vs %g", rebuilt.CriticalPathMS, direct.CriticalPathMS)
	}
	if len(rebuilt.Regions) != 1 || rebuilt.Regions[0] != direct.Regions[0] {
		t.Fatalf("region stats changed across JSON: %+v vs %+v", rebuilt.Regions, direct.Regions)
	}
}

func TestProfileMarkdown(t *testing.T) {
	mdown := BuildProfile(syntheticForest(), 10).Markdown()
	for _, want := range []string{
		"Total stage wall 100.0 ms",
		"**Critical path**",
		"**Top stages by exclusive self-time:**",
		"**Parallel regions**",
		"| r | 2 | 12 |",
	} {
		if !strings.Contains(mdown, want) {
			t.Fatalf("Markdown missing %q:\n%s", want, mdown)
		}
	}
}
