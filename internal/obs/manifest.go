package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"
)

// Manifest is the provenance record of one pipeline run: what ran, on what
// substrate, where the time and allocations went, and what the metrics
// counted. REPORT.md runs and benchmark trajectories attach this document so
// every number carries its origin.
type Manifest struct {
	Tool      string `json:"tool"`
	Seed      int64  `json:"seed"`
	Scale     string `json:"scale"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	// Scenario provenance (internal/scenario): the resolved scenario name and
	// the SHA-256 of its canonical spec rendering, so a manifest pins exactly
	// which declared world produced it. Both omitted when the run did not pass
	// -scenario, keeping plain-run manifests byte-identical to pre-scenario
	// ones.
	Scenario     string `json:"scenario,omitempty"`
	ScenarioHash string `json:"scenario_hash,omitempty"`
	// Snapshot is the world-snapshot file the run spilled to or streamed
	// from (-snapshot); omitted when the world was synthesized in memory,
	// keeping snapshot-free manifests byte-identical to earlier ones.
	Snapshot string `json:"snapshot,omitempty"`
	// StartedAt/WallMS describe the run itself, not the experiments: they
	// vary run to run and are excluded from determinism comparisons.
	StartedAt string                 `json:"started_at,omitempty"`
	WallMS    float64                `json:"wall_ms"`
	Stages    []SpanSnapshot         `json:"stages"`
	Metrics   map[string]MetricValue `json:"metrics"`
	// Funnels is the data-provenance accounting: per filtering stage, how
	// many items entered, were kept, and were dropped for which reason.
	// Deterministic at any worker count.
	Funnels []FunnelSnapshot `json:"funnels,omitempty"`
	// Profile is the timeline analysis of Stages (critical path, exclusive
	// self-times, parallel-region worker utilization). Like stage wall
	// times it varies run to run and is quarantined from determinism
	// comparisons (runsdiff reports it as informational only).
	Profile *Profile `json:"profile,omitempty"`
	// Lineage provenance (-lineage): the canonical SHA-256 of the sampled
	// per-decision records plus per-stage decision counts. Both omitted when
	// lineage is off, so lineage-off manifests stay byte-identical to
	// pre-lineage ones (the recorder and its funnels register lazily).
	LineageDigest string              `json:"lineage_digest,omitempty"`
	Lineage       []LineageStageCount `json:"lineage,omitempty"`
	// Temporal provenance (internal/temporal): the canonical SHA-256 of the
	// replayed trajectory's event stream, with the horizon and schedule that
	// produced it. All omitted when the run had no -hours/-schedule replay,
	// so temporal-free manifests stay byte-identical to pre-temporal ones.
	TrajectoryDigest string `json:"trajectory_digest,omitempty"`
	TemporalHours    int    `json:"temporal_hours,omitempty"`
	TemporalSchedule string `json:"temporal_schedule,omitempty"`
	// Chaos provenance (internal/chaos): which fault profile and chaos seed
	// the run injected, and whether any stage lost more than its degradation
	// threshold to injected faults. All omitted on clean runs, so chaos-off
	// manifests are byte-identical to pre-chaos ones.
	ChaosProfile   string   `json:"chaos_profile,omitempty"`
	ChaosSeed      int64    `json:"chaos_seed,omitempty"`
	Degraded       bool     `json:"degraded,omitempty"`
	DegradedStages []string `json:"degraded_stages,omitempty"`
}

// BuildManifest assembles a manifest from a finished (or in-flight) tracer
// and the Default metrics registry. start anchors stage offsets and WallMS;
// pass the time the run began.
func BuildManifest(tool string, seed int64, scale string, tr *Tracer, start time.Time) *Manifest {
	m := &Manifest{
		Tool:      tool,
		Seed:      seed,
		Scale:     scale,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Stages:    tr.Snapshot(start),
		Metrics:   Default.Snapshot(),
		Funnels:   Default.FunnelSnapshots(),
	}
	if len(m.Stages) > 0 {
		m.Profile = BuildProfile(m.Stages, 10)
	}
	if lr := ActiveLineage(); lr != nil {
		m.LineageDigest = lr.Digest()
		m.Lineage = lr.StageCounts()
	}
	if !start.IsZero() {
		m.StartedAt = start.UTC().Format(time.RFC3339)
		m.WallMS = float64(time.Since(start)) / float64(time.Millisecond)
	}
	return m
}

// StageCount returns the number of named stages in the manifest's span tree.
func (m *Manifest) StageCount() int { return StageCount(m.Stages) }

// WriteFile writes the manifest as indented JSON.
func (m *Manifest) WriteFile(path string) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("obs: marshal manifest: %w", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("obs: write manifest: %w", err)
	}
	return nil
}

// ReadManifest loads a manifest written by WriteFile.
func ReadManifest(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("obs: read manifest: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("obs: parse manifest %s: %w", path, err)
	}
	return &m, nil
}
