package offnetrisk

import (
	"context"
	"fmt"
	"strings"

	"offnetrisk/internal/hypergiant"
	"offnetrisk/internal/offnetmap"
	"offnetrisk/internal/scan"
	"offnetrisk/internal/traffic"
)

// Table1Row is one row of the paper's Table 1: ISPs hosting a hypergiant's
// offnets at both epochs, with ground truth for validation.
type Table1Row struct {
	Hypergiant  string
	ISPs2021    int
	ISPs2023    int
	GrowthPct   float64
	Truth2021   int // deployment ground truth (the real pipeline has none)
	Truth2023   int
	OffnetAddrs int // inferred offnet addresses in 2023
}

// Table1Result reproduces §2.2.
type Table1Result struct {
	Rows []Table1Row
	// TotalISPs2023 is the number of distinct ISPs hosting any offnet in
	// 2023 (paper: 5516); TotalAddrs the inferred offnet addresses
	// (paper: 261K).
	TotalISPs2023 int
	TotalAddrs    int
	// StaleRuleISPs2023 is what the unmodified 2021 methodology finds per
	// hypergiant on the 2023 scan — the §2.2 evasion ablation (Google and
	// Meta collapse to 0).
	StaleRuleISPs2023 map[string]int
}

// Table1 runs the full §2.2 pipeline at both epochs: simulate the TLS scan,
// apply the epoch-appropriate inference rules, and assemble the table. The
// 2021 epoch uses the original rules; the 2023 epoch uses this paper's
// updated rules; the stale-rule ablation applies 2021 rules to 2023 data.
func (p *Pipeline) Table1() (*Table1Result, error) {
	return p.Table1Context(context.Background())
}

// Table1Context is Table1 with cancellation (the scan simulation streams
// serially, so the context only gates entry).
func (p *Pipeline) Table1Context(ctx context.Context) (*Table1Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	root := p.span("table1")
	defer root.End()
	w21, d21, err := p.deployment(hypergiant.Epoch2021)
	if err != nil {
		return nil, err
	}
	w23, d23, err := p.deployment(hypergiant.Epoch2023)
	if err != nil {
		return nil, err
	}
	sp := p.span("table1/tls-scan")
	recs21, err := scan.Simulate(d21, scan.ConfigFromScenario(p.spec(), p.Seed))
	if err != nil {
		sp.End()
		return nil, err
	}
	recs23, err := scan.Simulate(d23, scan.ConfigFromScenario(p.spec(), p.Seed))
	if err != nil {
		sp.End()
		return nil, err
	}
	sp.SetAttr("records_2021", len(recs21))
	sp.SetAttr("records_2023", len(recs23))
	sp.End()
	sp = p.span("table1/offnet-inference")
	// Pass labels keep the three classification passes apart in lineage
	// records; with lineage off they are inert.
	res21 := offnetmap.InferLineage(w21, recs21, offnetmap.Rules2021(), p.Chaos, "2021")
	res23 := offnetmap.InferLineage(w23, recs23, offnetmap.Rules2023(), p.Chaos, "2023")
	stale := offnetmap.InferLineage(w23, recs23, offnetmap.Rules2021(), p.Chaos, "stale-2021")
	sp.SetAttr("offnets_2023", len(res23.Offnets))
	sp.End()

	out := &Table1Result{StaleRuleISPs2023: make(map[string]int)}
	for _, row := range offnetmap.Table1(res21, res23) {
		out.Rows = append(out.Rows, Table1Row{
			Hypergiant:  row.HG.String(),
			ISPs2021:    row.ISPs2021,
			ISPs2023:    row.ISPs2023,
			GrowthPct:   row.GrowthPct(),
			Truth2021:   len(d21.HostISPs(row.HG)),
			Truth2023:   len(d23.HostISPs(row.HG)),
			OffnetAddrs: len(res23.AddrsOf(row.HG)),
		})
		out.StaleRuleISPs2023[row.HG.String()] = stale.ISPCount(row.HG)
	}
	out.TotalISPs2023 = len(res23.HostingISPs())
	out.TotalAddrs = len(res23.Offnets)
	return out, nil
}

// String renders the table the way the paper prints it.
func (r *Table1Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: # of ISPs hosting offnets (inferred from TLS scans)\n")
	fmt.Fprintf(&b, "%-10s %10s %10s %9s   (stale 2021 rules on 2023 scan)\n",
		"Hypergiant", "2021", "2023", "growth")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-10s %10d %10d %+8.1f%%   %d\n",
			row.Hypergiant, row.ISPs2021, row.ISPs2023, row.GrowthPct,
			r.StaleRuleISPs2023[row.Hypergiant])
	}
	fmt.Fprintf(&b, "total: %d offnet addresses across %d ISPs (2023)\n",
		r.TotalAddrs, r.TotalISPs2023)
	return b.String()
}

// hgByName resolves a Table 1 row name back to its hypergiant.
func hgByName(name string) (traffic.HG, bool) {
	for _, hg := range traffic.All {
		if hg.String() == name {
			return hg, true
		}
	}
	return 0, false
}
