package offnetrisk

import (
	"testing"

	"offnetrisk/internal/stats"
)

// TestShapeInvariantsAcrossSeeds re-runs the headline experiments across
// several world seeds and asserts the paper's qualitative claims hold in
// every one — the reproduction must not hinge on a lucky seed.
func TestShapeInvariantsAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed sweep skipped in -short mode")
	}
	for _, seed := range []int64{11, 23, 37, 51} {
		seed := seed
		t.Run(fmtSeed(seed), func(t *testing.T) {
			p := NewPipeline(seed, ScaleTiny)

			// Table 1: growth ordering Netflix > Google > Meta > Akamai=0.
			t1, err := p.Table1()
			if err != nil {
				t.Fatal(err)
			}
			growth := map[string]float64{}
			for _, row := range t1.Rows {
				growth[row.Hypergiant] = row.GrowthPct
				if row.ISPs2021 != row.Truth2021 || row.ISPs2023 != row.Truth2023 {
					t.Errorf("%s: inference diverged from ground truth", row.Hypergiant)
				}
			}
			if !(growth["Netflix"] > growth["Google"] && growth["Google"] > growth["Meta"]) {
				t.Errorf("growth ordering violated: %+v", growth)
			}
			if growth["Akamai"] != 0 {
				t.Errorf("Akamai growth = %v, want 0", growth["Akamai"])
			}
			if t1.StaleRuleISPs2023["Google"] != 0 || t1.StaleRuleISPs2023["Meta"] != 0 {
				t.Error("stale 2021 rules must miss Google and Meta")
			}

			// Colocation: the ξ=0.9 full-colocation bucket dominates ξ=0.1
			// in aggregate, and most multi-HG hosts colocate something.
			col, err := p.Colocation()
			if err != nil {
				t.Fatal(err)
			}
			var full01, full09 float64
			for _, row := range col.Table2 {
				if row.Xi == 0.1 {
					full01 += row.BucketPct[int(stats.BucketFull)]
				} else {
					full09 += row.BucketPct[int(stats.BucketFull)]
				}
			}
			if full09 <= full01 {
				t.Errorf("ξ=0.9 aggregate full colocation (%.0f) not above ξ=0.1 (%.0f)", full09, full01)
			}
			if col.UsersAtLeast2 < 0.4 {
				t.Errorf("multi-HG user share = %.2f, want majority-ish", col.UsersAtLeast2)
			}

			// Capacity: lockdown shape for every hypergiant.
			cs, err := p.CapacityStudy()
			if err != nil {
				t.Fatal(err)
			}
			for _, c := range cs.Covid {
				if c.InterdomainGrowth < 1.5 || c.OffnetGrowthPct > 35 {
					t.Errorf("%s: lockdown shape broken: offnet %+.1f%%, interdomain ×%.2f",
						c.Hypergiant, c.OffnetGrowthPct, c.InterdomainGrowth)
				}
			}
			if cs.Diurnal[19].DistantPct <= cs.Diurnal[3].DistantPct {
				t.Error("diurnal distant-server effect missing")
			}

			// Cascades: colocation correlates failures.
			cas, err := p.CascadeStudy()
			if err != nil {
				t.Fatal(err)
			}
			if cas.MeanHGsPerFailure < 1.2 {
				t.Errorf("mean HGs per failure = %.2f", cas.MeanHGsPerFailure)
			}
		})
	}
}

func fmtSeed(seed int64) string {
	return "seed" + string(rune('0'+seed/10)) + string(rune('0'+seed%10))
}
