package offnetrisk

import (
	"context"
	"fmt"
	"strings"

	"offnetrisk/internal/hypergiant"
	"offnetrisk/internal/tracert"
	"offnetrisk/internal/traffic"
)

// PeeringSurveyResult reproduces §4.2.1 for one hypergiant (the paper can
// only measure from Google Cloud; we default to Google too).
type PeeringSurveyResult struct {
	Hypergiant string
	// Of ISPs hosting the hypergiant's offnets (paper: 38.2% / 13.3% /
	// 48.4% for Google).
	HostsTotal, HostsPeer, HostsPossible, HostsNoEvidence int
	// Of all inferred peers (paper: 9207 total, 62.2% via IXP, 42.5%
	// IXP-only).
	PeersTotal, PeersViaIXP, PeersOnlyIXP int
	Traceroutes                           int
}

// PeerPct returns the percent of offnet hosts classified as peers.
func (r *PeeringSurveyResult) PeerPct() float64 { return pct(r.HostsPeer, r.HostsTotal) }

// PossiblePct returns the percent classified as possible peers.
func (r *PeeringSurveyResult) PossiblePct() float64 { return pct(r.HostsPossible, r.HostsTotal) }

// NoEvidencePct returns the percent with no peering evidence.
func (r *PeeringSurveyResult) NoEvidencePct() float64 { return pct(r.HostsNoEvidence, r.HostsTotal) }

// ViaIXPPct returns the percent of peers seen over an exchange.
func (r *PeeringSurveyResult) ViaIXPPct() float64 { return pct(r.PeersViaIXP, r.PeersTotal) }

// OnlyIXPPct returns the percent of peers seen only over exchanges.
func (r *PeeringSurveyResult) OnlyIXPPct() float64 { return pct(r.PeersOnlyIXP, r.PeersTotal) }

func pct(n, d int) float64 {
	if d == 0 {
		return 0
	}
	return 100 * float64(n) / float64(d)
}

// PeeringSurvey runs the §4.2.1 traceroute campaign and inference for
// Google.
func (p *Pipeline) PeeringSurvey() (*PeeringSurveyResult, error) {
	return p.PeeringSurveyContext(context.Background())
}

// PeeringSurveyContext is PeeringSurvey with cancellation.
func (p *Pipeline) PeeringSurveyContext(ctx context.Context) (*PeeringSurveyResult, error) {
	return p.PeeringSurveyForContext(ctx, traffic.Google)
}

// PeeringSurveyFor runs the survey for any hypergiant — something the paper
// could not do ("We cannot run measurements from Meta, Netflix, or Akamai")
// but the simulation can.
func (p *Pipeline) PeeringSurveyFor(hg traffic.HG) (*PeeringSurveyResult, error) {
	return p.PeeringSurveyForContext(context.Background(), hg)
}

// PeeringSurveyForContext is PeeringSurveyFor with cancellation; the
// traceroute campaign fans out one destination ISP per task across
// p.Workers goroutines.
func (p *Pipeline) PeeringSurveyForContext(ctx context.Context, hg traffic.HG) (*PeeringSurveyResult, error) {
	root := p.span("peering-survey")
	root.SetAttr("hypergiant", hg.String())
	defer root.End()
	w, d, err := p.deployment(hypergiant.Epoch2023)
	if err != nil {
		return nil, err
	}
	cfg := tracert.ConfigFromScenario(p.spec(), p.Seed)
	cfg.Workers = p.Workers
	cfg.Chaos = p.Chaos
	if p.Scale == ScaleTiny {
		cfg.VMs = 24
	}
	sctx, sp := p.spanCtx(ctx, "peering-survey/traceroutes")
	traces, err := tracert.SurveyContext(sctx, d, hg, cfg)
	if err != nil {
		sp.End()
		return nil, err
	}
	n := 0
	for _, list := range traces {
		n += len(list)
	}
	sp.SetAttr("traceroutes", n)
	sp.End()
	sp = p.span("peering-survey/infer")
	inf := tracert.Infer(w, hg, d.ContentAS[hg], traces)
	st := tracert.Stats(d, hg, inf)
	sp.SetAttr("peers_total", st.PeersTotal)
	sp.End()
	return &PeeringSurveyResult{
		Hypergiant:      hg.String(),
		HostsTotal:      st.HostsTotal,
		HostsPeer:       st.HostsPeer,
		HostsPossible:   st.HostsPossible,
		HostsNoEvidence: st.HostsNoEvidence,
		PeersTotal:      st.PeersTotal,
		PeersViaIXP:     st.PeersViaIXP,
		PeersOnlyIXP:    st.PeersOnlyIXP,
		Traceroutes:     n,
	}, nil
}

// String renders the survey in the paper's phrasing.
func (r *PeeringSurveyResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "§4.2.1 peering survey (%s, %d traceroutes)\n", r.Hypergiant, r.Traceroutes)
	fmt.Fprintf(&b, "of %d ISPs with offnets: %d peer (%.1f%%), %d possible (%.1f%%), %d no evidence (%.1f%%)\n",
		r.HostsTotal, r.HostsPeer, r.PeerPct(), r.HostsPossible, r.PossiblePct(),
		r.HostsNoEvidence, r.NoEvidencePct())
	fmt.Fprintf(&b, "of %d peers: %d via IXP (%.1f%%), %d IXP-only (%.1f%%)\n",
		r.PeersTotal, r.PeersViaIXP, r.ViaIXPPct(), r.PeersOnlyIXP, r.OnlyIXPPct())
	return b.String()
}
