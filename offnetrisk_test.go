package offnetrisk

import (
	"strings"
	"testing"

	"offnetrisk/internal/traffic"
)

func tinyPipeline(seed int64) *Pipeline { return NewPipeline(seed, ScaleTiny) }

func TestPipelineTable1(t *testing.T) {
	p := tinyPipeline(1)
	res, err := p.Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if _, ok := hgByName(row.Hypergiant); !ok {
			t.Errorf("unknown hypergiant %q", row.Hypergiant)
		}
		// Inference must match deployment ground truth exactly in the
		// simulation (the paper cannot check this; we can).
		if row.ISPs2021 != row.Truth2021 || row.ISPs2023 != row.Truth2023 {
			t.Errorf("%s: inference (%d/%d) != truth (%d/%d)",
				row.Hypergiant, row.ISPs2021, row.ISPs2023, row.Truth2021, row.Truth2023)
		}
		if row.OffnetAddrs == 0 {
			t.Errorf("%s: no offnet addresses", row.Hypergiant)
		}
	}
	// Stale-rule ablation: Google and Meta vanish.
	if res.StaleRuleISPs2023["Google"] != 0 || res.StaleRuleISPs2023["Meta"] != 0 {
		t.Errorf("stale rules should find 0 Google/Meta ISPs: %+v", res.StaleRuleISPs2023)
	}
	if res.StaleRuleISPs2023["Netflix"] == 0 {
		t.Error("stale rules should still find Netflix")
	}
	if !strings.Contains(res.String(), "Table 1") {
		t.Error("String() missing header")
	}
}

func TestPipelineColocation(t *testing.T) {
	p := tinyPipeline(1)
	res, err := p.Colocation()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Table2) != 8 {
		t.Fatalf("Table2 rows = %d, want 8", len(res.Table2))
	}
	for _, row := range res.Table2 {
		sum := row.SolePct
		for _, v := range row.BucketPct {
			sum += v
		}
		if sum < 99 || sum > 101 {
			t.Errorf("%s ξ=%v row sums to %.1f%%", row.Hypergiant, row.Xi, sum)
		}
	}
	for _, xi := range Xis {
		if len(res.Figure2[xi]) == 0 {
			t.Errorf("no Figure 2 points at ξ=%v", xi)
		}
		if res.UserShare25Pct[xi] <= 0 {
			t.Errorf("no users above 25%% facility share at ξ=%v", xi)
		}
	}
	if len(res.Figure1) == 0 {
		t.Error("no Figure 1 rows")
	}
	if res.UsersAtLeast1 < res.UsersAtLeast2 {
		t.Error("global user shares non-monotone")
	}
	if res.UsersAnalyzable <= 0 || res.UsersAnalyzable > 1 {
		t.Errorf("analyzable users = %v", res.UsersAnalyzable)
	}
	if len(res.Validation) != 2 {
		t.Fatalf("validation rows = %d", len(res.Validation))
	}
	for _, v := range res.Validation {
		if v.Evaluated > 0 && v.Accuracy < 0.8 {
			t.Errorf("validation accuracy %.2f at ξ=%v", v.Accuracy, v.Xi)
		}
	}
	if !strings.Contains(res.String(), "Table 2") {
		t.Error("String() missing header")
	}
}

func TestPipelinePeeringSurvey(t *testing.T) {
	p := tinyPipeline(1)
	res, err := p.PeeringSurvey()
	if err != nil {
		t.Fatal(err)
	}
	if res.Hypergiant != "Google" {
		t.Errorf("default survey should be Google, got %s", res.Hypergiant)
	}
	if res.HostsTotal == 0 || res.Traceroutes == 0 {
		t.Fatal("empty survey")
	}
	if res.HostsPeer+res.HostsPossible+res.HostsNoEvidence != res.HostsTotal {
		t.Error("host classes do not partition")
	}
	if res.PeerPct()+res.PossiblePct()+res.NoEvidencePct() < 99 {
		t.Error("percentages do not sum to 100")
	}
	if !strings.Contains(res.String(), "peering survey") {
		t.Error("String() missing header")
	}
	// The simulation can do what the paper could not: survey other HGs.
	n, err := p.PeeringSurveyFor(traffic.Netflix)
	if err != nil {
		t.Fatal(err)
	}
	if n.Hypergiant != "Netflix" || n.HostsTotal == 0 {
		t.Errorf("Netflix survey empty: %+v", n)
	}
}

func TestPipelineCapacityStudy(t *testing.T) {
	p := tinyPipeline(1)
	res, err := p.CapacityStudy()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Covid) != 4 || len(res.PNI) != 4 || len(res.Diurnal) != 24 {
		t.Fatalf("unexpected result sizes: %d/%d/%d", len(res.Covid), len(res.PNI), len(res.Diurnal))
	}
	for _, c := range res.Covid {
		if c.InterdomainGrowth < 1.5 {
			t.Errorf("%s: interdomain growth ×%.2f, want large", c.Hypergiant, c.InterdomainGrowth)
		}
		if c.OffnetGrowthPct > 35 {
			t.Errorf("%s: offnet growth %.1f%%, want capped near burst", c.Hypergiant, c.OffnetGrowthPct)
		}
	}
	if res.Diurnal[19].DistantPct <= res.Diurnal[3].DistantPct {
		t.Error("peak distant share should exceed trough")
	}
	if !strings.Contains(res.String(), "lockdown replay") {
		t.Error("String() missing header")
	}
}

func TestPipelineCascadeStudy(t *testing.T) {
	p := tinyPipeline(1)
	res, err := p.CascadeStudy()
	if err != nil {
		t.Fatal(err)
	}
	if res.Scenarios == 0 {
		t.Fatal("no scenarios")
	}
	if res.MeanHGsPerFailure < 1.3 {
		t.Errorf("mean HGs per failure = %.2f; colocation should correlate failures", res.MeanHGsPerFailure)
	}
	if res.Worst.Facility == "" || len(res.Worst.HGsKnockedOut) < 2 {
		t.Errorf("worst case should knock out multiple hypergiants: %+v", res.Worst)
	}
	if !strings.Contains(res.String(), "cascade sweep") {
		t.Error("String() missing header")
	}
}

func TestPipelinePerfectStorm(t *testing.T) {
	p := tinyPipeline(1)
	sc, err := p.PerfectStorm(8, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.HGsKnockedOut) < 2 {
		t.Errorf("perfect storm should hit multiple hypergiants: %+v", sc)
	}
	if sc.CongestedIXPs+sc.CongestedTransits == 0 {
		t.Error("perfect storm congested nothing")
	}
}

func TestPipelineCachesDeployments(t *testing.T) {
	p := tinyPipeline(1)
	w1, d1, err := p.World2023()
	if err != nil {
		t.Fatal(err)
	}
	w2, d2, err := p.World2023()
	if err != nil {
		t.Fatal(err)
	}
	if w1 != w2 || d1 != d2 {
		t.Error("deployments should be cached per epoch")
	}
	w21, _, err := p.World2021()
	if err != nil {
		t.Fatal(err)
	}
	if w21 == w1 {
		t.Error("epochs must use distinct worlds")
	}
}

func TestPipelineDeterministic(t *testing.T) {
	a, err := tinyPipeline(9).Table1()
	if err != nil {
		t.Fatal(err)
	}
	b, err := tinyPipeline(9).Table1()
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Rows {
		if a.Rows[i] != b.Rows[i] {
			t.Fatalf("row %d differs across identical pipelines", i)
		}
	}
}

func TestPipelineMappingStudy(t *testing.T) {
	p := tinyPipeline(1)
	res, err := p.MappingStudy()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Era2013) != 4 || len(res.Era2023) != 4 {
		t.Fatalf("rows: %d/%d", len(res.Era2013), len(res.Era2023))
	}
	byName := func(rows []MappingRow, name string) MappingRow {
		for _, r := range rows {
			if r.Hypergiant == name {
				return r
			}
		}
		t.Fatalf("missing %s", name)
		return MappingRow{}
	}
	if g := byName(res.Era2013, "Google"); g.CoveragePct <= 0 {
		t.Error("2013 Google mapping should work")
	}
	for _, name := range []string{"Google", "Netflix", "Meta"} {
		if r := byName(res.Era2023, name); r.CoveragePct != 0 {
			t.Errorf("2023 %s coverage = %.1f, want 0 (embedded URLs)", name, r.CoveragePct)
		}
	}
	if a := byName(res.Era2023, "Akamai"); a.CoveragePct <= 0 {
		t.Error("2023 Akamai should retain partial coverage (allowlisted ECS)")
	}
	if !strings.Contains(res.String(), "2013-era steering") {
		t.Error("String() missing era header")
	}
}

func TestPipelineMitigationStudy(t *testing.T) {
	p := tinyPipeline(1)
	res, err := p.MitigationStudy()
	if err != nil {
		t.Fatal(err)
	}
	if res.Scenarios == 0 {
		t.Fatal("no scenarios")
	}
	if res.MeanCollateralIsolated > res.MeanCollateralShared {
		t.Errorf("isolation worse than shared fate: %.2f > %.2f",
			res.MeanCollateralIsolated, res.MeanCollateralShared)
	}
	if !strings.Contains(res.String(), "isolation") {
		t.Error("String() missing header")
	}
}

func TestPipelineConformance(t *testing.T) {
	p := tinyPipeline(1)
	suite, err := p.Conformance()
	if err != nil {
		t.Fatal(err)
	}
	if len(suite.Checks) < 20 {
		t.Fatalf("only %d checks; the suite should cover every table and figure", len(suite.Checks))
	}
	for _, c := range suite.Failed() {
		t.Errorf("conformance check failed: %s (paper %s, measured %.2f%s, band [%.1f, %.1f])",
			c.ID, c.Paper, c.Got, c.Unit, c.Lo, c.Hi)
	}
	if !strings.Contains(suite.Markdown(), "checks passed") {
		t.Error("markdown missing summary")
	}
}
