package offnetrisk

import (
	"context"
	"fmt"
	"strings"

	"offnetrisk/internal/capacity"
	"offnetrisk/internal/hypergiant"
	"offnetrisk/internal/inet"
	"offnetrisk/internal/traffic"
)

// CovidRow is the §4.1 lockdown replay for one hypergiant.
type CovidRow struct {
	Hypergiant        string
	SpikePct          float64
	OffnetGrowthPct   float64 // paper: +20% for Netflix
	InterdomainGrowth float64 // multiplicative; paper: "more than doubled"
	OffnetSharePre    float64 // paper: 63%+
}

// DiurnalRow is one hour of the §4.1 residential diurnal sweep.
type DiurnalRow struct {
	Hour         int
	DemandGbps   float64
	NearbyPct    float64
	DistantPct   float64
	SpillToShare float64
}

// PNIRow is the §4.2.2 census for one hypergiant.
type PNIRow struct {
	Hypergiant     string
	Total, Deficit int
	MeanExcessPct  float64 // paper: ≥13%
	SeverePct      float64 // paper: ≈10% at 2× capacity
}

// PanelRow summarizes the §4.1 residential apartment panel.
type PanelRow struct {
	Apartments   int
	TroughNearby float64 // median nearby share at 03h
	PeakNearby   float64 // median nearby share at 19h
}

// CapacityResult bundles §4.1 and §4.2.2.
type CapacityResult struct {
	Covid   []CovidRow
	Diurnal []DiurnalRow
	PNI     []PNIRow
	// Panel is the 530-apartment study inside the largest all-four-
	// hypergiant access ISP.
	Panel PanelRow
}

// CapacityStudy runs the offnet/interconnect capacity experiments on the
// 2023 deployment.
func (p *Pipeline) CapacityStudy() (*CapacityResult, error) {
	return p.CapacityStudyContext(context.Background())
}

// CapacityStudyContext is CapacityStudy with cancellation; the diurnal
// sweep serves its 24 hours across p.Workers goroutines.
func (p *Pipeline) CapacityStudyContext(ctx context.Context) (*CapacityResult, error) {
	root := p.span("capacity-study")
	defer root.End()
	_, d, err := p.deployment(hypergiant.Epoch2023)
	if err != nil {
		return nil, err
	}
	sp := p.span("capacity-study/build-model")
	m := capacity.Build(d, capacity.ConfigFromScenario(p.spec(), p.Seed))
	sp.End()
	out := &CapacityResult{}

	// COVID replay per hypergiant; the paper's evidence is the Netflix +58%
	// lockdown spike.
	sp = p.span("capacity-study/covid-replay")
	for _, hg := range traffic.All {
		rep := capacity.CovidReplay(m, hg, 1.58)
		out.Covid = append(out.Covid, CovidRow{
			Hypergiant:        hg.String(),
			SpikePct:          58,
			OffnetGrowthPct:   100 * rep.OffnetGrowth(),
			InterdomainGrowth: 1 + rep.InterdomainGrowth(),
			OffnetSharePre:    rep.OffnetSharePre,
		})
	}
	sp.End()

	sctx, sp := p.spanCtx(ctx, "capacity-study/diurnal-sweep")
	points, err := capacity.DiurnalSweepContext(sctx, m, p.Workers)
	if err != nil {
		sp.End()
		return nil, err
	}
	for _, pt := range points {
		out.Diurnal = append(out.Diurnal, DiurnalRow{
			Hour: pt.Hour, DemandGbps: pt.Demand,
			NearbyPct: 100 * pt.NearbyShare, DistantPct: 100 * pt.DistantShare,
			SpillToShare: pt.SharedSpill,
		})
	}
	sp.End()

	sp = p.span("capacity-study/pni-census")
	for _, hg := range traffic.All {
		c := capacity.CensusPNIs(m, hg)
		out.PNI = append(out.PNI, PNIRow{
			Hypergiant: hg.String(), Total: c.Total, Deficit: c.Deficit,
			MeanExcessPct: c.MeanExcessPct, SeverePct: 100 * c.SevereFraction,
		})
	}
	sp.End()

	// The 530-apartment panel: largest all-four access ISP, falling back to
	// the largest access host.
	sp = p.span("capacity-study/apartment-panel")
	defer sp.End()
	var panelISP inet.ASN
	var bestUsers float64
	for _, as := range d.HostingISPs() {
		isp := d.World.ISPs[as]
		if !isp.IsAccess() {
			continue
		}
		allFour := len(d.HGsIn(as)) == 4
		score := isp.Users
		if allFour {
			score *= 10
		}
		if score > bestUsers {
			bestUsers, panelISP = score, as
		}
	}
	if panelISP != 0 {
		apts := capacity.ApartmentsMix(530, panelISP, p.Seed, p.spec().Mix())
		summary := capacity.Summarize(capacity.ApartmentStudy(m, apts))
		out.Panel = PanelRow{
			Apartments:   summary.Apartments,
			TroughNearby: summary.TroughNearby,
			PeakNearby:   summary.PeakNearby,
		}
		sp.SetAttr("apartments", summary.Apartments)
	}
	return out, nil
}

// String renders the three §4 capacity experiments.
func (r *CapacityResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "§4.1 lockdown replay (+58%% demand)\n")
	for _, c := range r.Covid {
		fmt.Fprintf(&b, "  %-8s offnet %+5.1f%%, interdomain ×%.2f (pre-spike offnet share %.0f%%)\n",
			c.Hypergiant, c.OffnetGrowthPct, c.InterdomainGrowth, 100*c.OffnetSharePre)
	}
	fmt.Fprintf(&b, "§4.1 diurnal distant-server effect\n")
	trough, peak := r.Diurnal[3], r.Diurnal[19]
	fmt.Fprintf(&b, "  03h: %.0f%% nearby / %.0f%% distant;  19h: %.0f%% nearby / %.0f%% distant\n",
		trough.NearbyPct, trough.DistantPct, peak.NearbyPct, peak.DistantPct)
	if r.Panel.Apartments > 0 {
		fmt.Fprintf(&b, "§4.1 apartment panel (%d homes): median nearby share %.0f%% at trough → %.0f%% at peak\n",
			r.Panel.Apartments, 100*r.Panel.TroughNearby, 100*r.Panel.PeakNearby)
	}
	fmt.Fprintf(&b, "§4.2.2 PNI census\n")
	for _, p := range r.PNI {
		fmt.Fprintf(&b, "  %-8s %3d PNIs, %3d in deficit (mean excess %.0f%%), %.0f%% at ≥2× capacity\n",
			p.Hypergiant, p.Total, p.Deficit, p.MeanExcessPct, p.SeverePct)
	}
	return b.String()
}
