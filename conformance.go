package offnetrisk

import (
	"context"
	"strconv"

	"offnetrisk/internal/report"
	"offnetrisk/internal/stats"
	sweeppkg "offnetrisk/internal/sweep"
)

// Conformance runs every experiment and scores the outcome against the
// paper's reported shapes, one check per claim. The bands accept the
// synthetic substrate's variance while rejecting direction or ordering
// violations — the standard DESIGN.md §4 sets for "reproduced".
func (p *Pipeline) Conformance() (*report.Suite, error) {
	return p.ConformanceContext(context.Background())
}

// ConformanceContext is Conformance with cancellation, running every
// sub-experiment through its context-aware variant so a SIGINT aborts the
// whole suite promptly.
func (p *Pipeline) ConformanceContext(ctx context.Context) (*report.Suite, error) {
	root := p.span("conformance")
	defer root.End()
	s := &report.Suite{}

	// ---- Table 1 (§2.2) -------------------------------------------------
	t1, err := p.Table1Context(ctx)
	if err != nil {
		return nil, err
	}
	growthBands := map[string][3]float64{
		// paper growth, band lo, band hi
		"Google":  {23.2, 10, 36},
		"Netflix": {37.4, 24, 50},
		"Meta":    {16.9, 5, 29},
		"Akamai":  {0, -1, 1},
	}
	for _, row := range t1.Rows {
		b := growthBands[row.Hypergiant]
		s.Add("Table1/"+row.Hypergiant+"-growth",
			paperPct(b[0]), row.GrowthPct, b[1], b[2], "%")
	}
	s.AddBool("Table1/footprint-order", "Google > Netflix ≳ Meta > Akamai",
		t1.Rows[0].ISPs2023 > t1.Rows[1].ISPs2023 && t1.Rows[1].ISPs2023 > t1.Rows[3].ISPs2023 &&
			t1.Rows[2].ISPs2023 > t1.Rows[3].ISPs2023)
	s.AddBool("Sec2.2/evasion-ablation", "2021 rules miss Google & Meta in 2023",
		t1.StaleRuleISPs2023["Google"] == 0 && t1.StaleRuleISPs2023["Meta"] == 0 &&
			t1.StaleRuleISPs2023["Netflix"] > 0)

	// ---- Table 2 / Figures 1–2 (§3) -------------------------------------
	col, err := p.ColocationContext(ctx)
	if err != nil {
		return nil, err
	}
	var full01, full09 float64
	var sole09 map[string]float64 = map[string]float64{}
	for _, row := range col.Table2 {
		if row.Xi == 0.1 {
			full01 += row.BucketPct[int(stats.BucketFull)]
		} else {
			full09 += row.BucketPct[int(stats.BucketFull)]
			sole09[row.Hypergiant] = row.SolePct
		}
	}
	s.AddBool("Table2/xi-bounding", "full colocation grows ξ=0.1→0.9 in aggregate",
		full09 > full01)
	s.Add("Table2/Google-sole", "31%", sole09["Google"], 15, 50, "%")
	s.AddBool("Table2/Google-most-sole", "Google has the largest sole share",
		sole09["Google"] >= sole09["Netflix"] && sole09["Google"] >= sole09["Meta"] &&
			sole09["Google"] >= sole09["Akamai"])
	s.Add("Fig1/users-multi-HG", "majority of users in ≥2-HG ISPs",
		100*col.UsersAtLeast2, 50, 100, "%")
	s.Add("Fig2/users-25pct-facility", "71–82% of analyzable users",
		100*col.UserShare25Pct[0.1], 55, 100, "%")
	for _, v := range col.Validation {
		s.Add(fmtXi("Sec3.2/validation", v.Xi), "94–97% consistent",
			100*v.Accuracy, 85, 100, "%")
	}

	// ---- §4.1 / §4.2 -----------------------------------------------------
	cs, err := p.CapacityStudyContext(ctx)
	if err != nil {
		return nil, err
	}
	for _, c := range cs.Covid {
		if c.Hypergiant == "Netflix" {
			s.Add("Sec4.1/lockdown-offnet-growth", "+20%", c.OffnetGrowthPct, 5, 30, "%")
			s.Add("Sec4.1/lockdown-interdomain", "more than doubled", c.InterdomainGrowth, 2, 100, "×")
		}
	}
	s.AddBool("Sec4.1/diurnal-distant", "peak shifts traffic to distant servers",
		cs.Diurnal[19].DistantPct > cs.Diurnal[3].DistantPct)
	s.AddBool("Sec4.1/apartments", "nearby share falls at peak (530 homes)",
		cs.Panel.Apartments > 0 && cs.Panel.PeakNearby < cs.Panel.TroughNearby)
	var pniTotal, pniDeficit, pniSevere float64
	for _, r := range cs.PNI {
		pniTotal += float64(r.Total)
		pniDeficit += float64(r.Deficit)
		pniSevere += r.SeverePct / 100 * float64(r.Total)
	}
	if pniTotal > 0 {
		s.Add("Sec4.2.2/pni-deficit", "most sites constrained on some paths",
			100*pniDeficit/pniTotal, 25, 90, "%")
		s.Add("Sec4.2.2/pni-severe", "10% at 2× capacity",
			100*pniSevere/pniTotal, 1, 30, "%")
	}

	ps, err := p.PeeringSurveyContext(ctx)
	if err != nil {
		return nil, err
	}
	s.Add("Sec4.2.1/no-evidence", "48.4%", ps.NoEvidencePct(), 30, 70, "%")
	s.Add("Sec4.2.1/peer", "38.2%", ps.PeerPct(), 20, 65, "%")
	s.Add("Sec4.2.1/via-ixp", "62.2% of peers", ps.ViaIXPPct(), 25, 90, "%")
	s.AddBool("Sec4.2.1/peers-exceed-hosts", "9207 peers vs 4697 hosting ISPs",
		ps.PeersTotal > ps.HostsPeer)

	// ---- §4.3 / §3.3 ------------------------------------------------------
	cas, err := p.CascadeStudyContext(ctx)
	if err != nil {
		return nil, err
	}
	s.Add("Sec4.3/hg-per-failure", "colocation correlates failures",
		cas.MeanHGsPerFailure, 1.2, 4, "")
	s.AddBool("Sec4.3/qoe-degrades", "failures degrade user QoE",
		cas.WorstQoE.P95RTTms > cas.BaselineQoE.P95RTTms &&
			cas.WorstQoE.DroppedPct >= cas.BaselineQoE.DroppedPct)

	// ---- §3.2 methodology + §6 mitigation ---------------------------------
	mp, err := p.MappingStudyContext(ctx)
	if err != nil {
		return nil, err
	}
	var g13, g23, a23 float64
	for _, r := range mp.Era2013 {
		if r.Hypergiant == "Google" {
			g13 = r.CoveragePct
		}
	}
	for _, r := range mp.Era2023 {
		switch r.Hypergiant {
		case "Google":
			g23 = r.CoveragePct
		case "Akamai":
			a23 = r.CoveragePct
		}
	}
	s.AddBool("Sec3.2/mapping-broke", "2013 technique worked then, fails now",
		g13 > 0 && g23 == 0 && a23 > 0)

	mit, err := p.MitigationStudyContext(ctx)
	if err != nil {
		return nil, err
	}
	s.AddBool("Sec6/isolation-helps", "capacity slices reduce collateral",
		mit.MeanCollateralIsolated <= mit.MeanCollateralShared)

	// ---- sensitivity directions (DESIGN.md §5) -----------------------------
	// The sweeps rebuild tiny worlds internally regardless of the pipeline
	// scale: the directions under test are scale-independent and the full
	// sweep at large scale would dominate the suite's runtime.
	sp := p.span("conformance/sensitivity-sweeps")
	defer sp.End()
	if prop, err := sweeppkg.ColocationPropensity(p.Seed, []float64{0.4, 0.9}); err == nil && len(prop.Points) == 2 {
		s.AddBool("Sweep/propensity-direction",
			"more colocation propensity → more correlated failures",
			prop.Points[1].Metrics["hg-per-failure"] > prop.Points[0].Metrics["hg-per-failure"])
	}
	if hr, err := sweeppkg.SharedHeadroom(p.Seed, []float64{1.05, 2.0}); err == nil && len(hr.Points) == 2 {
		s.AddBool("Sweep/headroom-direction",
			"more shared headroom → fewer congesting scenarios",
			hr.Points[1].Metrics["congesting-frac"] <= hr.Points[0].Metrics["congesting-frac"])
	}

	root.SetAttr("checks", len(s.Checks))
	return s, nil
}

func paperPct(v float64) string {
	return strconv.FormatFloat(v, 'f', -1, 64) + "%"
}

func fmtXi(prefix string, xi float64) string {
	if xi < 0.5 {
		return prefix + "-xi0.1"
	}
	return prefix + "-xi0.9"
}
