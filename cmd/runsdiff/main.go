// Command runsdiff compares two run manifests (cmd/reproduce -manifest) and
// classifies every difference: determinism-relevant drift (counter deltas,
// histogram count/bucket deltas, funnel accounting drift, stage-sequence
// changes), quality warnings (per-stage wall-time regressions, unbalanced
// funnels), and expected run-to-run variation (environment, wall clock,
// gauges, in-tolerance histogram sums).
//
//	runsdiff golden_manifest.json manifest.json
//
// Exit status: 0 when the runs agree on everything deterministic, 1 on
// drift, 2 on usage or unreadable manifests. CI runs it against a checked-in
// golden manifest, so a same-seed reproduction that stops being byte-stable
// fails the build with the exact stage and reason in the log.
package main

import (
	"flag"
	"fmt"
	"os"

	"offnetrisk/internal/obs"
)

func main() {
	sumTol := flag.Float64("sum-tol", 1e-9,
		"relative tolerance for histogram sums (CAS float accumulation is scheduling-order dependent)")
	maxRegress := flag.Float64("max-wall-regress", 2.0,
		"warn when a stage's wall time grows by more than this factor")
	quiet := flag.Bool("q", false, "print drift only (suppress warnings and info)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: runsdiff [flags] <reference-manifest.json> <candidate-manifest.json>\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}

	ref, err := obs.ReadManifest(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "runsdiff:", err)
		os.Exit(2)
	}
	cand, err := obs.ReadManifest(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "runsdiff:", err)
		os.Exit(2)
	}

	res := obs.CompareManifests(ref, cand, obs.DiffOptions{
		SumTol:         *sumTol,
		MaxWallRegress: *maxRegress,
	})

	for _, d := range res.Drift {
		fmt.Println("drift:", d)
	}
	if !*quiet {
		for _, w := range res.Warnings {
			fmt.Println("warn: ", w)
		}
		for _, i := range res.Infos {
			fmt.Println("info: ", i)
		}
	}

	if res.HasDrift() {
		fmt.Printf("runsdiff: %d drift, %d warnings — runs are NOT deterministically equal\n",
			len(res.Drift), len(res.Warnings))
		os.Exit(1)
	}
	fmt.Printf("runsdiff: no drift (%d warnings, %d informational differences)\n",
		len(res.Warnings), len(res.Infos))
}
