// Command offnetatlas builds the located offnet dataset: every discovered
// offnet address annotated with hosting ISP, latency-derived cluster, and a
// metro inferred by majority vote over the cluster's reverse-DNS geohints —
// the publishable artifact behind the paper's colocation claims.
//
//	go run ./cmd/offnetatlas -o atlas.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"offnetrisk/internal/atlas"
	"offnetrisk/internal/cli"
	"offnetrisk/internal/coloc"
	"offnetrisk/internal/mlab"
	"offnetrisk/internal/obs"
	"offnetrisk/internal/rdns"
)

func main() {
	common := cli.Register(flag.CommandLine)
	xi := flag.Float64("xi", 0.9, "OPTICS steepness for the facility clustering")
	out := flag.String("o", "", "write the atlas CSV here (default: stats only)")
	flag.Parse()

	if common.HandleScenarioList() {
		return
	}
	logger := common.Logger("offnetatlas")
	fatal := func(msg string, err error) {
		logger.Error(msg, "err", err)
		os.Exit(1)
	}
	ctx, stop := common.Context()
	defer stop()

	p, err := common.Pipeline()
	if err != nil {
		fatal("invalid flags", err)
	}
	sp := p.Scenario()
	tr := obs.NewTracer()
	p.Instrument(tr)
	stopObs, err := common.Observability(ctx, tr, logger)
	if err != nil {
		fatal("observability setup failed", err)
	}
	defer stopObs()
	w, d, err := p.World2023()
	if err != nil {
		fatal("world build failed", err)
	}

	logger.Info("running latency campaign")
	mcfg := mlab.ConfigFromScenario(sp, common.Seed)
	mcfg.Workers = common.Workers
	mcfg.Chaos = p.Chaos
	c, err := mlab.MeasureContext(ctx, d, mlab.Sites(sp.Measurement.PingSites, common.Seed), mcfg)
	if err != nil {
		fatal("latency campaign failed", err)
	}
	logger.Info("clustering")
	a, err := coloc.AnalyzeMixContext(ctx, w, c, []float64{*xi}, common.Workers, sp.Mix())
	if err != nil {
		fatal("clustering failed", err)
	}
	ptrs := rdns.Synthesize(d, rdns.ConfigFromScenario(sp, common.Seed))

	entries := atlas.Build(d, c, a, ptrs, *xi)
	s := atlas.Score(entries)
	fmt.Printf("atlas: %d offnet servers, %.0f%% located (ξ=%.1f), %.0f%% of located correct vs ground truth\n",
		s.Entries, 100*s.Coverage, *xi, 100*s.Accuracy)

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal("cannot create atlas file", err)
		}
		if err := atlas.WriteCSV(f, entries); err != nil {
			fatal("cannot write atlas", err)
		}
		if err := f.Close(); err != nil {
			fatal("cannot close atlas file", err)
		}
		logger.Info("atlas written", "path", *out)
	}
}
