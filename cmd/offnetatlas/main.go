// Command offnetatlas builds the located offnet dataset: every discovered
// offnet address annotated with hosting ISP, latency-derived cluster, and a
// metro inferred by majority vote over the cluster's reverse-DNS geohints —
// the publishable artifact behind the paper's colocation claims.
//
//	go run ./cmd/offnetatlas -o atlas.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"offnetrisk"
	"offnetrisk/internal/atlas"
	"offnetrisk/internal/coloc"
	"offnetrisk/internal/mlab"
	"offnetrisk/internal/obs"
	"offnetrisk/internal/rdns"
)

func main() {
	seed := flag.Int64("seed", 42, "world seed")
	tiny := flag.Bool("tiny", false, "use the miniature test world")
	large := flag.Bool("large", false, "use the large (paper-sized) world")
	xi := flag.Float64("xi", 0.9, "OPTICS steepness for the facility clustering")
	out := flag.String("o", "", "write the atlas CSV here (default: stats only)")
	verbose := flag.Bool("v", false, "verbose (debug-level) logging")
	flag.Parse()

	logger := obs.SetupCLI("offnetatlas", *verbose)
	fatal := func(msg string, err error) {
		logger.Error(msg, "err", err)
		os.Exit(1)
	}

	scale := offnetrisk.ScaleDefault
	if *tiny {
		scale = offnetrisk.ScaleTiny
	}
	if *large {
		scale = offnetrisk.ScaleLarge
	}
	p := offnetrisk.NewPipeline(*seed, scale)
	w, d, err := p.World2023()
	if err != nil {
		fatal("world build failed", err)
	}

	logger.Info("running latency campaign")
	c := mlab.Measure(d, mlab.Sites(163, *seed), mlab.DefaultConfig(*seed))
	logger.Info("clustering")
	a := coloc.Analyze(w, c, []float64{*xi})
	ptrs := rdns.Synthesize(d, rdns.DefaultConfig(*seed))

	entries := atlas.Build(d, c, a, ptrs, *xi)
	s := atlas.Score(entries)
	fmt.Printf("atlas: %d offnet servers, %.0f%% located (ξ=%.1f), %.0f%% of located correct vs ground truth\n",
		s.Entries, 100*s.Coverage, *xi, 100*s.Accuracy)

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal("cannot create atlas file", err)
		}
		if err := atlas.WriteCSV(f, entries); err != nil {
			fatal("cannot write atlas", err)
		}
		if err := f.Close(); err != nil {
			fatal("cannot close atlas file", err)
		}
		logger.Info("atlas written", "path", *out)
	}
}
