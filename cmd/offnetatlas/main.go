// Command offnetatlas builds the located offnet dataset: every discovered
// offnet address annotated with hosting ISP, latency-derived cluster, and a
// metro inferred by majority vote over the cluster's reverse-DNS geohints —
// the publishable artifact behind the paper's colocation claims.
//
//	go run ./cmd/offnetatlas -o atlas.csv
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"offnetrisk"
	"offnetrisk/internal/atlas"
	"offnetrisk/internal/coloc"
	"offnetrisk/internal/mlab"
	"offnetrisk/internal/rdns"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("offnetatlas: ")
	seed := flag.Int64("seed", 42, "world seed")
	tiny := flag.Bool("tiny", false, "use the miniature test world")
	large := flag.Bool("large", false, "use the large (paper-sized) world")
	xi := flag.Float64("xi", 0.9, "OPTICS steepness for the facility clustering")
	out := flag.String("o", "", "write the atlas CSV here (default: stats only)")
	flag.Parse()

	scale := offnetrisk.ScaleDefault
	if *tiny {
		scale = offnetrisk.ScaleTiny
	}
	if *large {
		scale = offnetrisk.ScaleLarge
	}
	p := offnetrisk.NewPipeline(*seed, scale)
	w, d, err := p.World2023()
	if err != nil {
		log.Fatal(err)
	}

	log.Print("running latency campaign…")
	c := mlab.Measure(d, mlab.Sites(163, *seed), mlab.DefaultConfig(*seed))
	log.Print("clustering…")
	a := coloc.Analyze(w, c, []float64{*xi})
	ptrs := rdns.Synthesize(d, rdns.DefaultConfig(*seed))

	entries := atlas.Build(d, c, a, ptrs, *xi)
	s := atlas.Score(entries)
	fmt.Printf("atlas: %d offnet servers, %.0f%% located (ξ=%.1f), %.0f%% of located correct vs ground truth\n",
		s.Entries, 100*s.Coverage, *xi, 100*s.Accuracy)

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		if err := atlas.WriteCSV(f, entries); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s", *out)
	}
}
