// Command colocmap runs the §3 colocation pipeline: the 163-site latency
// campaign, per-ISP OPTICS clustering at ξ∈{0.1,0.9}, Table 2, the Figure 1
// per-country aggregation, the Figure 2 traffic-concentration CCDF, and the
// reverse-DNS validation.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"offnetrisk"
	"offnetrisk/internal/cli"
	"offnetrisk/internal/obs"
)

func main() {
	common := cli.Register(flag.CommandLine)
	countries := flag.Int("countries", 10, "Figure 1 rows to print")
	ccdf := flag.Bool("ccdf", false, "print the full Figure 2 CCDF series")
	flag.Parse()

	if common.HandleScenarioList() {
		return
	}
	logger := common.Logger("colocmap")
	ctx, stop := common.Context()
	defer stop()

	p, err := common.Pipeline()
	if err != nil {
		logger.Error("invalid flags", "err", err)
		os.Exit(2)
	}
	tr := obs.NewTracer()
	p.Instrument(tr)
	stopObs, err := common.Observability(ctx, tr, logger)
	if err != nil {
		logger.Error("observability setup failed", "err", err)
		os.Exit(1)
	}
	defer stopObs()

	logger.Debug("running colocation pipeline", "seed", common.Seed, "scale", common.Scale().String())
	res, err := p.ColocationContext(ctx)
	if err != nil {
		logger.Error("colocation pipeline failed", "err", err)
		os.Exit(1)
	}
	fmt.Print(res)

	fmt.Printf("\nFigure 1: top countries by users in multi-hypergiant ISPs\n")
	rows := append([]offnetrisk.CountryRow(nil), res.Figure1...)
	sort.Slice(rows, func(i, j int) bool { return rows[i].Users > rows[j].Users })
	fmt.Printf("%-8s %12s %8s %8s %8s\n", "country", "users", "≥2 HGs", "≥3 HGs", "4 HGs")
	for i, row := range rows {
		if i >= *countries {
			break
		}
		fmt.Printf("%-8s %12.0f %7.0f%% %7.0f%% %7.0f%%\n",
			row.Country, row.Users, 100*row.AtLeast2, 100*row.AtLeast3, 100*row.AllFour)
	}

	if *ccdf {
		for _, xi := range offnetrisk.Xis {
			fmt.Printf("\nFigure 2 CCDF (ξ=%.1f): share fraction-of-users\n", xi)
			for _, pt := range res.Figure2[xi] {
				fmt.Printf("  %.3f %.4f\n", pt.Share, pt.Users)
			}
		}
	}
}
