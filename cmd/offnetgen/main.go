// Command offnetgen generates a synthetic Internet with hypergiant offnet
// deployments and dumps a JSON summary: ISPs, facilities, IXPs, offnet
// servers, and interconnections. It is the substrate inspection tool — what
// the pipelines downstream measure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"offnetrisk/internal/cli"
	"offnetrisk/internal/hypergiant"
	"offnetrisk/internal/inet"
	"offnetrisk/internal/obs"
)

type serverDump struct {
	Addr     string `json:"addr"`
	HG       string `json:"hypergiant"`
	ASN      uint32 `json:"asn"`
	Facility string `json:"facility"`
	Rack     int    `json:"rack"`
	CertCN   string `json:"cert_cn"`
	CertOrg  string `json:"cert_org,omitempty"`
}

type ispDump struct {
	ASN       uint32   `json:"asn"`
	Name      string   `json:"name"`
	Country   string   `json:"country"`
	Tier      string   `json:"tier"`
	Users     float64  `json:"users"`
	Prefixes  []string `json:"prefixes"`
	Providers []uint32 `json:"providers"`
}

type dump struct {
	Seed       int64        `json:"seed"`
	ISPs       []ispDump    `json:"isps"`
	Servers    []serverDump `json:"offnet_servers"`
	IXPs       int          `json:"ixps"`
	Facilities int          `json:"facilities"`
	Peerings   int          `json:"peerings"`
}

func main() {
	common := cli.Register(flag.CommandLine)
	epoch := flag.Int("epoch", 2023, "deployment epoch (2021 or 2023)")
	summary := flag.Bool("summary", false, "print a short summary instead of JSON")
	jsonSnapshot := flag.Bool("json-snapshot", false, "emit a loadable world snapshot (inet.RestoreJSON format) instead of the flat dump")
	genOnly := flag.Bool("gen-only", false, "generate (or stream) the world and print its summary without deploying offnets — the huge-tier smoke path")
	flag.Parse()

	if common.HandleScenarioList() {
		return
	}
	logger := common.Logger("offnetgen")
	fatal := func(msg string, err error) {
		logger.Error(msg, "err", err)
		os.Exit(1)
	}
	ctx, stop := common.Context()
	defer stop()
	sp, err := common.ScenarioSpec()
	if err != nil {
		fatal("invalid flags", err)
	}
	// World generation injects no faults, but the shared -chaos flag should
	// still reject unknown profiles here like everywhere else.
	if _, err := common.InjectorFromSpec(sp); err != nil {
		fatal("invalid flags", err)
	}
	stopObs, err := common.Observability(ctx, obs.NewTracer(), logger)
	if err != nil {
		fatal("observability setup failed", err)
	}
	defer stopObs()

	wcfg, err := common.WorldConfig()
	if err != nil {
		fatal("invalid flags", err)
	}
	w, fromDisk, err := inet.LoadOrGenerate(common.Snapshot, wcfg, sp.Hash())
	if err != nil {
		fatal("world build failed", err)
	}
	logger.Debug("world ready", "isps", len(w.ISPs), "facilities", len(w.Facilities),
		"scenario", sp.Name, "streamed", fromDisk)

	if *genOnly {
		fmt.Printf("world seed=%d scenario=%s streamed=%v: %d ISPs (%d access), %d facilities, %d IXPs, %.2fB users\n",
			common.Seed, sp.Name, fromDisk, len(w.ISPs), len(w.AccessISPs()), len(w.Facilities), len(w.IXPs),
			w.TotalUsers()/1e9)
		return
	}

	d, err := hypergiant.Deploy(w, hypergiant.Epoch(*epoch), hypergiant.DeployConfigFromScenario(sp, common.Seed))
	if err != nil {
		fatal("deploy failed", err)
	}

	if *jsonSnapshot {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(w); err != nil {
			fatal("snapshot encode failed", err)
		}
		return
	}

	if *summary {
		fmt.Printf("world seed=%d: %d ISPs (%d access), %d facilities, %d IXPs, %.2fB users\n",
			common.Seed, len(w.ISPs), len(w.AccessISPs()), len(w.Facilities), len(w.IXPs),
			w.TotalUsers()/1e9)
		fmt.Printf("deployment epoch=%d: %d offnet servers in %d ISPs, %d peerings\n",
			*epoch, len(d.Servers), len(d.HostingISPs()), len(d.Peerings))
		return
	}

	out := dump{Seed: common.Seed, IXPs: len(w.IXPs), Facilities: len(w.Facilities), Peerings: len(d.Peerings)}
	for _, isp := range w.ISPList() {
		id := ispDump{
			ASN: uint32(isp.ASN), Name: isp.Name, Country: isp.Country,
			Tier: isp.Tier.String(), Users: isp.Users,
		}
		for _, p := range isp.Prefixes {
			id.Prefixes = append(id.Prefixes, p.String())
		}
		for _, p := range isp.Providers {
			id.Providers = append(id.Providers, uint32(p))
		}
		out.ISPs = append(out.ISPs, id)
	}
	for _, s := range d.Servers {
		out.Servers = append(out.Servers, serverDump{
			Addr: s.Addr.String(), HG: s.HG.String(), ASN: uint32(s.ISP),
			Facility: w.Facilities[s.Facility].Name(), Rack: s.Rack,
			CertCN: s.Cert.SubjectCN, CertOrg: s.Cert.SubjectOrg,
		})
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fatal("dump encode failed", err)
	}
}
