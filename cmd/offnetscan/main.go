// Command offnetscan runs the §2.2 offnet-discovery pipeline: TLS scans of
// the synthetic Internet at the 2021 and 2023 epochs, certificate-based
// inference with the epoch-appropriate rules, and Table 1 — including the
// stale-methodology ablation showing why the 2021 rules stopped working.
package main

import (
	"flag"
	"fmt"
	"os"

	"offnetrisk/internal/cli"
	"offnetrisk/internal/obs"
	"offnetrisk/internal/offnetmap"
	"offnetrisk/internal/scan"
	"offnetrisk/internal/traffic"
)

func main() {
	common := cli.Register(flag.CommandLine)
	records := flag.String("records", "", "also write the 2023 scan as NDJSON to this file")
	from := flag.String("from", "", "re-run the 2023 inference over an NDJSON scan dump instead of scanning")
	flag.Parse()

	if common.HandleScenarioList() {
		return
	}
	logger := common.Logger("offnetscan")
	fatal := func(msg string, err error) {
		logger.Error(msg, "err", err)
		os.Exit(1)
	}
	ctx, stop := common.Context()
	defer stop()

	p, err := common.Pipeline()
	if err != nil {
		fatal("invalid flags", err)
	}
	tr := obs.NewTracer()
	p.Instrument(tr)
	stopObs, err := common.Observability(ctx, tr, logger)
	if err != nil {
		fatal("observability setup failed", err)
	}
	defer stopObs()

	if *from != "" {
		// External-dump mode: parse the NDJSON scan and run the 2023
		// methodology against this seed's IP-to-AS mapping.
		f, err := os.Open(*from)
		if err != nil {
			fatal("cannot open scan dump", err)
		}
		recs, err := scan.ReadNDJSON(f)
		f.Close()
		if err != nil {
			fatal("cannot parse scan dump", err)
		}
		w, _, err := p.World2023()
		if err != nil {
			fatal("world build failed", err)
		}
		inferred := offnetmap.Infer(w, recs, offnetmap.Rules2023())
		fmt.Printf("inference over %s (%d records):\n", *from, len(recs))
		for _, hg := range traffic.All {
			fmt.Printf("  %-8s %d ISPs\n", hg, inferred.ISPCount(hg))
		}
		return
	}

	logger.Debug("running Table 1 pipeline", "seed", common.Seed, "scale", common.Scale().String())
	res, err := p.Table1Context(ctx)
	if err != nil {
		fatal("Table 1 pipeline failed", err)
	}
	fmt.Print(res)

	if *records != "" {
		_, d, err := p.World2023()
		if err != nil {
			fatal("world build failed", err)
		}
		recs, err := scan.Simulate(d, scan.ConfigFromScenario(p.Scenario(), common.Seed))
		if err != nil {
			fatal("scan simulation failed", err)
		}
		f, err := os.Create(*records)
		if err != nil {
			fatal("cannot create records file", err)
		}
		if err := scan.WriteNDJSON(f, recs); err != nil {
			fatal("cannot write records", err)
		}
		if err := f.Close(); err != nil {
			fatal("cannot close records file", err)
		}
		logger.Info("scan records written", "count", len(recs), "path", *records)
	}

	fmt.Println("\nground truth check (simulation-only capability):")
	for _, row := range res.Rows {
		status := "exact"
		if row.ISPs2021 != row.Truth2021 || row.ISPs2023 != row.Truth2023 {
			status = "MISMATCH"
		}
		fmt.Printf("  %-8s truth %d→%d, inferred %d→%d (%s)\n",
			row.Hypergiant, row.Truth2021, row.Truth2023, row.ISPs2021, row.ISPs2023, status)
	}
}
