// Command reproduce runs every experiment in the paper and writes a
// self-contained report directory: REPORT.md with paper-vs-measured numbers
// and SVG renderings of Figure 1 (world map), Figure 2 (CCDF), and the
// diurnal sweep.
//
//	go run ./cmd/reproduce -out out/
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"offnetrisk"
	"offnetrisk/internal/coloc"
	"offnetrisk/internal/geo"
	"offnetrisk/internal/inet"
	"offnetrisk/internal/mlab"
	"offnetrisk/internal/optics"
	"offnetrisk/internal/svgplot"
	"offnetrisk/internal/sweep"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("reproduce: ")
	seed := flag.Int64("seed", 42, "world seed")
	tiny := flag.Bool("tiny", false, "use the miniature test world")
	large := flag.Bool("large", false, "use the large (paper-sized) world")
	outDir := flag.String("out", "out", "output directory")
	flag.Parse()

	scale := offnetrisk.ScaleDefault
	if *tiny {
		scale = offnetrisk.ScaleTiny
	}
	if *large {
		scale = offnetrisk.ScaleLarge
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		log.Fatal(err)
	}

	p := offnetrisk.NewPipeline(*seed, scale)
	var md strings.Builder
	fmt.Fprintf(&md, "# offnetrisk reproduction report\n\nseed %d, scale %v\n\n", *seed, scale)

	log.Print("running Table 1 pipeline…")
	t1, err := p.Table1()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(&md, "## Table 1 (§2.2)\n\n```\n%s```\n\n", t1)

	log.Print("running colocation pipeline…")
	col, err := p.Colocation()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(&md, "## Table 2, Figures 1–2 (§3.2)\n\n```\n%s```\n\n", col)
	fmt.Fprintf(&md, "![Figure 1](figure1.svg)\n\n![Figure 2](figure2.svg)\n\n")

	// Figure 2 SVG: user-weighted CCDF, both ξ.
	var fig2 []svgplot.Series
	for _, xi := range offnetrisk.Xis {
		s := svgplot.Series{Name: fmt.Sprintf("ξ=%.1f", xi)}
		for _, pt := range col.Figure2[xi] {
			s.X = append(s.X, pt.Share)
			s.Y = append(s.Y, pt.Users)
		}
		fig2 = append(fig2, s)
	}
	writeFile(*outDir, "figure2.svg", svgplot.StepLines(
		"Figure 2: CCDF of traffic fraction served from one facility",
		"estimated fraction of traffic from one facility", "fraction of users", fig2))

	// Figure 1 SVG: one dot per country at its first metro, shaded by the
	// ≥2-hypergiant user share.
	var points []svgplot.MapPoint
	rows := append([]offnetrisk.CountryRow(nil), col.Figure1...)
	sort.Slice(rows, func(i, j int) bool { return rows[i].Country < rows[j].Country })
	for _, row := range rows {
		ms := geo.MetrosIn(row.Country)
		if len(ms) == 0 {
			continue
		}
		points = append(points, svgplot.MapPoint{
			LatDeg: ms[0].Loc.LatDeg, LonDeg: ms[0].Loc.LonDeg,
			Value: row.AtLeast2, Label: row.Country,
		})
	}
	writeFile(*outDir, "figure1.svg", svgplot.WorldMap(
		"Figure 1a: users in ISPs hosting ≥2 hypergiants", points))

	// Reachability plot of the busiest analyzed ISP: the raw material the
	// ξ extraction works on (the OPTICS paper's signature diagram).
	if reach := reachabilityOf(p); len(reach) > 0 {
		writeFile(*outDir, "reachability.svg", svgplot.Bars(
			"OPTICS reachability plot (busiest analyzed ISP)",
			"processing order", "reachability distance (ms)", reach))
		fmt.Fprintf(&md, "![reachability](reachability.svg)\n\n")
	}

	log.Print("running peering survey…")
	ps, err := p.PeeringSurvey()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(&md, "## Peering survey (§4.2.1)\n\n```\n%s```\n\n", ps)

	log.Print("running capacity study…")
	cs, err := p.CapacityStudy()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(&md, "## Capacity (§4.1, §4.2.2)\n\n```\n%s```\n\n![diurnal](diurnal.svg)\n\n", cs)

	var nearby, distant svgplot.Series
	nearby.Name, distant.Name = "nearby (offnet)", "distant (interdomain)"
	for _, pt := range cs.Diurnal {
		nearby.X = append(nearby.X, float64(pt.Hour))
		nearby.Y = append(nearby.Y, pt.NearbyPct)
		distant.X = append(distant.X, float64(pt.Hour))
		distant.Y = append(distant.Y, pt.DistantPct)
	}
	writeFile(*outDir, "diurnal.svg", svgplot.Lines(
		"§4.1: where traffic is served, by hour", "hour of day", "% of traffic",
		[]svgplot.Series{nearby, distant}))

	log.Print("running cascade study…")
	cas, err := p.CascadeStudy()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(&md, "## Cascades (§3.3, §4.3)\n\n```\n%s```\n\n", cas)

	log.Print("running mapping study…")
	mp, err := p.MappingStudy()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(&md, "## DNS mapping methodology (§3.2)\n\n```\n%s```\n\n", mp)

	log.Print("running mitigation study…")
	mit, err := p.MitigationStudy()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(&md, "## Isolation what-if (§6)\n\n```\n%s```\n", mit)

	log.Print("running sensitivity sweeps…")
	fmt.Fprintf(&md, "## Sensitivity sweeps (DESIGN.md §5)\n\n```\n")
	if r, err := sweep.ColocationPropensity(*seed, []float64{0.3, 0.6, 0.86, 0.95}); err == nil {
		fmt.Fprint(&md, r)
	}
	if r, err := sweep.SharedHeadroom(*seed, []float64{1.05, 1.25, 1.5, 2.0}); err == nil {
		fmt.Fprint(&md, r)
	}
	if r, err := sweep.DemandSpike(*seed, []float64{1.0, 1.3, 1.58, 2.0, 3.0}); err == nil {
		fmt.Fprint(&md, r)
	}
	fmt.Fprintf(&md, "```\n\n")

	log.Print("scoring against the paper…")
	suite, err := p.Conformance()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(&md, "## Conformance against the paper\n\n%s\n", suite.Markdown())

	writeFile(*outDir, "REPORT.md", md.String())
	log.Printf("report written to %s (%d/%d conformance checks passed)",
		filepath.Join(*outDir, "REPORT.md"), suite.Passed(), len(suite.Checks))
}

// reachabilityOf recomputes the OPTICS ordering for the ISP with the most
// measured offnets and returns its reachability values.
func reachabilityOf(p *offnetrisk.Pipeline) []float64 {
	w, d, err := p.World2023()
	if err != nil {
		return nil
	}
	c := mlab.Measure(d, mlab.Sites(163, p.Seed), mlab.DefaultConfig(p.Seed))
	var bestAS inet.ASN
	best := 0
	for as, ms := range c.ByISP {
		if len(ms) > best {
			best, bestAS = len(ms), as
		}
	}
	if best < 2 {
		return nil
	}
	ms := c.ByISP[bestAS]
	dm := coloc.DistanceMatrix(ms, c.GoodSites[bestAS], coloc.DiscrepancyExclusion)
	res := optics.Run(len(ms), func(i, j int) float64 { return dm[i][j] }, 2, math.Inf(1))
	_ = w
	return res.Reach
}

func writeFile(dir, name, content string) {
	if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
		log.Fatal(err)
	}
}
