// Command reproduce runs every experiment in the paper and writes a
// self-contained report directory: REPORT.md with paper-vs-measured numbers
// and SVG renderings of Figure 1 (world map), Figure 2 (CCDF), and the
// diurnal sweep.
//
//	go run ./cmd/reproduce -out out/
//
// Stages run independently: a failing stage is recorded and the remaining
// stages still run; the command exits non-zero if any stage failed. With
// -manifest the run writes a JSON provenance document (seed, scale, span
// tree, metric values); with -debug-addr it serves live /debug/pprof,
// /debug/vars and /debug/obs pages while running. SIGINT cancels the
// in-flight stage and shuts the debug endpoint down cleanly.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"offnetrisk"
	"offnetrisk/internal/chaos"
	"offnetrisk/internal/cli"
	"offnetrisk/internal/coloc"
	"offnetrisk/internal/geo"
	"offnetrisk/internal/inet"
	"offnetrisk/internal/mlab"
	"offnetrisk/internal/obs"
	"offnetrisk/internal/optics"
	"offnetrisk/internal/svgplot"
	"offnetrisk/internal/sweep"
	"offnetrisk/internal/temporal"
)

func main() {
	common := cli.Register(flag.CommandLine)
	outDir := flag.String("out", "out", "output directory")
	manifestPath := flag.String("manifest", "", "write a JSON run manifest to this path")
	flag.Parse()

	if common.HandleScenarioList() {
		return
	}
	logger := common.Logger("reproduce")
	start := time.Now()
	ctx, stop := common.Context()
	defer stop()

	scale := common.Scale()
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		logger.Error("cannot create output directory", "dir", *outDir, "err", err)
		os.Exit(1)
	}

	tr := obs.NewTracer()
	p, err := common.Pipeline()
	if err != nil {
		logger.Error("invalid flags", "err", err)
		os.Exit(2)
	}
	hours, sched, err := common.Temporal()
	if err != nil {
		logger.Error("invalid temporal flags", "err", err)
		os.Exit(2)
	}
	p.Instrument(tr)

	stopObs, err := common.Observability(ctx, tr, logger)
	if err != nil {
		logger.Error("observability setup failed", "addr", common.DebugAddr, "err", err)
		os.Exit(1)
	}
	defer stopObs()

	var md strings.Builder
	fmt.Fprintf(&md, "# offnetrisk reproduction report\n\nseed %d, scale %v\n\n", common.Seed, scale)
	// Scenario provenance appears only when -scenario was passed: plain runs
	// keep the exact pre-scenario header, so their golden diffs stay clean.
	if common.Scenario != "" {
		sp := p.Scenario()
		fmt.Fprintf(&md, "scenario `%s` (spec sha256 `%s`)\n\n", sp.Name, sp.Hash())
	}

	// Stages run in order; a failure is collected, not fatal, so one broken
	// experiment still leaves the rest of the report usable. Cancellation is
	// fatal: once ctx is done every remaining stage would fail the same way.
	type failure struct {
		stage string
		err   error
	}
	var failures []failure
	run := func(stage string, fn func() error) {
		if ctx.Err() != nil {
			return
		}
		logger.Info("running stage", "stage", stage)
		t0 := time.Now()
		if err := fn(); err != nil {
			if errors.Is(err, context.Canceled) {
				logger.Warn("stage cancelled", "stage", stage)
				return
			}
			logger.Error("stage failed", "stage", stage, "err", err)
			failures = append(failures, failure{stage, err})
			fmt.Fprintf(&md, "## %s\n\n**stage failed:** `%v`\n\n", stage, err)
			return
		}
		logger.Debug("stage done", "stage", stage, "elapsed", time.Since(t0).Round(time.Millisecond))
	}
	writeFile := func(name, content string) error {
		if err := os.WriteFile(filepath.Join(*outDir, name), []byte(content), 0o644); err != nil {
			return fmt.Errorf("write %s: %w", name, err)
		}
		return nil
	}

	run("table1", func() error {
		t1, err := p.Table1Context(ctx)
		if err != nil {
			return err
		}
		fmt.Fprintf(&md, "## Table 1 (§2.2)\n\n```\n%s```\n\n", t1)
		return nil
	})

	run("colocation", func() error {
		col, err := p.ColocationContext(ctx)
		if err != nil {
			return err
		}
		fmt.Fprintf(&md, "## Table 2, Figures 1–2 (§3.2)\n\n```\n%s```\n\n", col)
		fmt.Fprintf(&md, "![Figure 1](figure1.svg)\n\n![Figure 2](figure2.svg)\n\n")

		// Figure 2 SVG: user-weighted CCDF, both ξ.
		var fig2 []svgplot.Series
		for _, xi := range offnetrisk.Xis {
			s := svgplot.Series{Name: fmt.Sprintf("ξ=%.1f", xi)}
			for _, pt := range col.Figure2[xi] {
				s.X = append(s.X, pt.Share)
				s.Y = append(s.Y, pt.Users)
			}
			fig2 = append(fig2, s)
		}
		if err := writeFile("figure2.svg", svgplot.StepLines(
			"Figure 2: CCDF of traffic fraction served from one facility",
			"estimated fraction of traffic from one facility", "fraction of users", fig2)); err != nil {
			return err
		}

		// Figure 1 SVG: one dot per country at its first metro, shaded by the
		// ≥2-hypergiant user share.
		var points []svgplot.MapPoint
		rows := append([]offnetrisk.CountryRow(nil), col.Figure1...)
		sort.Slice(rows, func(i, j int) bool { return rows[i].Country < rows[j].Country })
		for _, row := range rows {
			ms := geo.MetrosIn(row.Country)
			if len(ms) == 0 {
				continue
			}
			points = append(points, svgplot.MapPoint{
				LatDeg: ms[0].Loc.LatDeg, LonDeg: ms[0].Loc.LonDeg,
				Value: row.AtLeast2, Label: row.Country,
			})
		}
		return writeFile("figure1.svg", svgplot.WorldMap(
			"Figure 1a: users in ISPs hosting ≥2 hypergiants", points))
	})

	run("reachability-plot", func() error {
		// Reachability plot of the busiest analyzed ISP: the raw material the
		// ξ extraction works on (the OPTICS paper's signature diagram).
		reach, err := reachabilityOf(ctx, p, common.Workers)
		if err != nil {
			return err
		}
		if len(reach) == 0 {
			return nil
		}
		if err := writeFile("reachability.svg", svgplot.Bars(
			"OPTICS reachability plot (busiest analyzed ISP)",
			"processing order", "reachability distance (ms)", reach)); err != nil {
			return err
		}
		fmt.Fprintf(&md, "![reachability](reachability.svg)\n\n")
		return nil
	})

	run("peering-survey", func() error {
		ps, err := p.PeeringSurveyContext(ctx)
		if err != nil {
			return err
		}
		fmt.Fprintf(&md, "## Peering survey (§4.2.1)\n\n```\n%s```\n\n", ps)
		return nil
	})

	run("capacity-study", func() error {
		cs, err := p.CapacityStudyContext(ctx)
		if err != nil {
			return err
		}
		fmt.Fprintf(&md, "## Capacity (§4.1, §4.2.2)\n\n```\n%s```\n\n![diurnal](diurnal.svg)\n\n", cs)

		var nearby, distant svgplot.Series
		nearby.Name, distant.Name = "nearby (offnet)", "distant (interdomain)"
		for _, pt := range cs.Diurnal {
			nearby.X = append(nearby.X, float64(pt.Hour))
			nearby.Y = append(nearby.Y, pt.NearbyPct)
			distant.X = append(distant.X, float64(pt.Hour))
			distant.Y = append(distant.Y, pt.DistantPct)
		}
		return writeFile("diurnal.svg", svgplot.Lines(
			"§4.1: where traffic is served, by hour", "hour of day", "% of traffic",
			[]svgplot.Series{nearby, distant}))
	})

	run("cascade-study", func() error {
		cas, err := p.CascadeStudyContext(ctx)
		if err != nil {
			return err
		}
		fmt.Fprintf(&md, "## Cascades (§3.3, §4.3)\n\n```\n%s```\n\n", cas)
		return nil
	})

	run("mapping-study", func() error {
		mp, err := p.MappingStudyContext(ctx)
		if err != nil {
			return err
		}
		fmt.Fprintf(&md, "## DNS mapping methodology (§3.2)\n\n```\n%s```\n\n", mp)
		return nil
	})

	run("mitigation-study", func() error {
		mit, err := p.MitigationStudyContext(ctx)
		if err != nil {
			return err
		}
		fmt.Fprintf(&md, "## Isolation what-if (§6)\n\n```\n%s```\n", mit)
		return nil
	})

	run("sensitivity-sweeps", func() error {
		fmt.Fprintf(&md, "## Sensitivity sweeps (DESIGN.md §5)\n\n```\n")
		if r, err := sweep.ColocationPropensity(common.Seed, []float64{0.3, 0.6, 0.86, 0.95}); err == nil {
			fmt.Fprint(&md, r)
		}
		if r, err := sweep.SharedHeadroom(common.Seed, []float64{1.05, 1.25, 1.5, 2.0}); err == nil {
			fmt.Fprint(&md, r)
		}
		if r, err := sweep.DemandSpike(common.Seed, []float64{1.0, 1.3, 1.58, 2.0, 3.0}); err == nil {
			fmt.Fprint(&md, r)
		}
		fmt.Fprintf(&md, "```\n\n")
		return nil
	})

	// Temporal replay runs only when -hours/-schedule requested it, so
	// replay-free runs keep REPORT.md and the manifest byte-identical to
	// pre-temporal ones.
	var traj *temporal.Trajectory
	if hours > 0 {
		run("temporal-replay", func() error {
			t, err := p.TemporalReplayContext(ctx, hours, sched, common.EventSink())
			if err != nil {
				return err
			}
			traj = t
			fmt.Fprintf(&md, "## Temporal replay (DESIGN.md §14)\n\n```\n%s\n```\n\n", traj.Summary())
			fmt.Fprintf(&md, "| t (h) | demand (Gbps) | offnet %% | interdomain %% | congested links | collateral ISPs |\n")
			fmt.Fprintf(&md, "|---|---|---|---|---|---|\n")
			for _, st := range traj.Steps {
				a := st.Agg
				off, inter := 0.0, 0.0
				if a.Demand > 0 {
					off = 100 * a.Offnet / a.Demand
					inter = 100 * (a.PNI + a.IXP + a.UpstreamOffnet + a.Transit) / a.Demand
				}
				fmt.Fprintf(&md, "| %g | %.0f | %.1f | %.1f | %d | %d |\n",
					st.AtHours, a.Demand, off, inter,
					a.CongestedIXPs+a.CongestedTransits, a.CollateralISPs)
			}
			fmt.Fprintf(&md, "\n")
			return nil
		})
	}

	var passed, total int
	run("conformance", func() error {
		suite, err := p.ConformanceContext(ctx)
		if err != nil {
			return err
		}
		passed, total = suite.Passed(), len(suite.Checks)
		fmt.Fprintf(&md, "## Conformance against the paper\n\n%s\n", suite.Markdown())
		return nil
	})

	// Last content stage, so the table covers every pipeline the run executed
	// and matches the manifest's funnel snapshot.
	run("data-funnel", func() error {
		snaps := obs.Default.FunnelSnapshots()
		if len(snaps) == 0 {
			return nil
		}
		fmt.Fprintf(&md, "\n## Data funnel (Appendix A accounting)\n\nPer filtering stage: items in, items kept, and the drop breakdown. Every\nrow satisfies in == kept + dropped; these are the denominators behind the\ntables above.\n\n%s", obs.FunnelTable(snaps))
		return nil
	})

	// Degradation verdict: under chaos, a stage losing more than its
	// threshold to injected faults marks the run degraded — reported, not
	// failed. Clean runs skip the section entirely, keeping REPORT.md
	// byte-identical to a build without fault injection.
	run("chaos-degradation", func() error {
		if !p.Chaos.Enabled() {
			return nil
		}
		stages := chaos.DegradedStages(obs.Default.FunnelSnapshots(), chaos.DefaultThresholds())
		fmt.Fprintf(&md, "\n## Fault injection (chaos)\n\nProfile `%s`, chaos-seed %d. Injected faults are accounted in the\nchaos.* counters and the chaos_* drop reasons of the funnel table above.\n\n",
			p.Chaos.ProfileName(), p.Chaos.Seed())
		if len(stages) == 0 {
			fmt.Fprintf(&md, "No stage exceeded its degradation threshold: the run is **not degraded**.\n")
		} else {
			fmt.Fprintf(&md, "**Run degraded** — stages over their chaos-loss threshold: %s.\n",
				strings.Join(stages, ", "))
		}
		return nil
	})

	// Evidence appendix: per-stage decision accounting plus sampled evidence
	// chains from the lineage recorder. Lineage-off runs skip the section
	// entirely, keeping REPORT.md byte-identical to a build without -lineage.
	run("evidence-appendix", func() error {
		lr := obs.ActiveLineage()
		if lr == nil {
			return nil
		}
		fmt.Fprintf(&md, "\n## Evidence appendix (lineage)\n\nPer-decision provenance sampled by the lineage recorder (digest `%s`).\nEach stage shows its decision accounting and a deterministic sample of\nevidence chains; query the full capture with cmd/explain.\n\n%s",
			lr.Digest(), obs.LineageMarkdown(lr, 2))
		return nil
	})

	// Timeline analysis of the run itself: critical path, exclusive
	// self-times, worker utilization. Wall-clock numbers, so the section —
	// like the manifest's profile block — varies run to run and is excluded
	// from determinism comparisons; the experiment sections above are not.
	run("performance-profile", func() error {
		stages := tr.Snapshot(start)
		if len(stages) == 0 {
			return nil
		}
		prof := obs.BuildProfile(stages, 10)
		fmt.Fprintf(&md, "\n## Performance profile\n\n%s", prof.Markdown())
		return nil
	})

	run("report", func() error {
		return writeFile("REPORT.md", md.String())
	})

	if *manifestPath != "" {
		run("manifest", func() error {
			m := obs.BuildManifest("reproduce", common.Seed, scale.String(), tr, start)
			if common.Scenario != "" {
				m.Scenario = p.Scenario().Name
				m.ScenarioHash = p.Scenario().Hash()
			}
			m.Snapshot = common.Snapshot
			if traj != nil {
				m.TrajectoryDigest = traj.Digest()
				m.TemporalHours = traj.Hours
				m.TemporalSchedule = traj.ScheduleName
			}
			chaos.Annotate(m, p.Chaos, chaos.DefaultThresholds())
			if err := m.WriteFile(*manifestPath); err != nil {
				return err
			}
			logger.Info("manifest written", "path", *manifestPath,
				"stages", m.StageCount(), "metrics", len(m.Metrics))
			return nil
		})
	}

	if ctx.Err() != nil {
		logger.Error("run interrupted", "elapsed", time.Since(start).Round(time.Millisecond))
		os.Exit(1)
	}
	if len(failures) > 0 {
		logger.Error("run finished with failures",
			"failed", len(failures), "elapsed", time.Since(start).Round(time.Millisecond))
		for _, f := range failures {
			logger.Error("failed stage", "stage", f.stage, "err", f.err)
		}
		os.Exit(1)
	}
	logger.Info("report written",
		"path", filepath.Join(*outDir, "REPORT.md"),
		"conformance", fmt.Sprintf("%d/%d", passed, total),
		"elapsed", time.Since(start).Round(time.Millisecond))
}

// reachabilityOf recomputes the OPTICS ordering for the ISP with the most
// measured offnets and returns its reachability values.
func reachabilityOf(ctx context.Context, p *offnetrisk.Pipeline, workers int) ([]float64, error) {
	_, d, err := p.World2023()
	if err != nil {
		return nil, nil
	}
	sp := p.Scenario()
	mcfg := mlab.ConfigFromScenario(sp, p.Seed)
	mcfg.Workers = workers
	mcfg.Chaos = p.Chaos
	c, err := mlab.MeasureContext(ctx, d, mlab.Sites(sp.Measurement.PingSites, p.Seed), mcfg)
	if err != nil {
		return nil, err
	}
	var bestAS inet.ASN
	best := 0
	// Tie-break on the lowest ASN: map iteration order would otherwise pick
	// a different ISP across runs of the same seed.
	for as, ms := range c.ByISP {
		if len(ms) > best || (len(ms) == best && best > 0 && as < bestAS) {
			best, bestAS = len(ms), as
		}
	}
	if best < 2 {
		return nil, nil
	}
	ms := c.ByISP[bestAS]
	dm, err := coloc.DistanceMatrixContext(ctx, ms, c.GoodSites[bestAS], coloc.DiscrepancyExclusion, workers)
	if err != nil {
		return nil, err
	}
	res := optics.Run(len(ms), dm.At, 2, math.Inf(1))
	return res.Reach, nil
}
