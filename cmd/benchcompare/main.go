// benchcompare diffs two `make bench-json` records (test2json streams of a
// -bench run) benchstat-style: one row per benchmark with old → new ns/op,
// B/op, and allocs/op plus the ratio, so a perf PR can quote its before/after
// from two dated BENCH_*.json files without external tooling.
//
// Usage: benchcompare OLD.json NEW.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// metrics is one benchmark's parsed numbers; zero means "not reported".
type metrics struct {
	nsOp     float64
	bytesOp  float64
	allocsOp float64
}

// event is the subset of a test2json record we need.
type event struct {
	Action string
	Test   string
	Output string
}

// parseFile extracts benchmark results from a test2json stream, keyed by the
// benchmark name (the event's Test field, which test2json sets for every
// output line a benchmark emits).
func parseFile(path string) (map[string]metrics, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	out := make(map[string]metrics)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		var e event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			continue // tolerate trailing garbage / non-JSON lines
		}
		if e.Action != "output" || !strings.Contains(e.Output, "ns/op") {
			continue
		}
		name := e.Test
		if name == "" {
			// Older streams leave Test empty for package-level output; the
			// bench name is then the line's first field.
			if fields := strings.Fields(e.Output); len(fields) > 0 && strings.HasPrefix(fields[0], "Benchmark") {
				name = fields[0]
			}
		}
		if !strings.HasPrefix(name, "Benchmark") {
			continue
		}
		m := out[name]
		// A bench line is tab-separated "<iters>\t<value> <unit>\t..." —
		// match on the unit suffix of each cell.
		for _, cell := range strings.Split(e.Output, "\t") {
			cell = strings.TrimSpace(cell)
			for _, want := range []struct {
				unit string
				dst  *float64
			}{{"ns/op", &m.nsOp}, {"B/op", &m.bytesOp}, {"allocs/op", &m.allocsOp}} {
				if v, ok := strings.CutSuffix(cell, " "+want.unit); ok {
					if x, err := strconv.ParseFloat(strings.TrimSpace(v), 64); err == nil {
						*want.dst = x
					}
				}
			}
		}
		out[name] = m
	}
	return out, sc.Err()
}

// ratio renders new/old as a benchstat-style delta ("-62.9%", "+4.0%", "~").
func ratio(old, new float64) string {
	if old == 0 || new == 0 {
		return "?"
	}
	d := (new - old) / old * 100
	if d > -0.5 && d < 0.5 {
		return "~"
	}
	return fmt.Sprintf("%+.1f%%", d)
}

func human(v float64) string {
	switch {
	case v == 0:
		return "-"
	case v >= 1e9:
		return fmt.Sprintf("%.3gG", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.3gM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.3gk", v/1e3)
	default:
		return fmt.Sprintf("%.3g", v)
	}
}

func main() {
	if len(os.Args) != 3 {
		fmt.Fprintln(os.Stderr, "usage: benchcompare OLD.json NEW.json")
		os.Exit(2)
	}
	oldM, err := parseFile(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcompare:", err)
		os.Exit(1)
	}
	newM, err := parseFile(os.Args[2])
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcompare:", err)
		os.Exit(1)
	}

	names := make([]string, 0, len(oldM))
	for n := range oldM {
		if _, ok := newM[n]; ok {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		fmt.Println("no common benchmarks")
		return
	}

	fmt.Printf("%-55s %10s %10s %8s %10s %10s %8s %9s %9s %8s\n",
		"benchmark ("+os.Args[1]+" → "+os.Args[2]+")",
		"ns/op", "ns/op'", "Δ", "B/op", "B/op'", "Δ", "allocs", "allocs'", "Δ")
	for _, n := range names {
		o, nw := oldM[n], newM[n]
		fmt.Printf("%-55s %10s %10s %8s %10s %10s %8s %9s %9s %8s\n",
			strings.TrimPrefix(n, "Benchmark"),
			human(o.nsOp), human(nw.nsOp), ratio(o.nsOp, nw.nsOp),
			human(o.bytesOp), human(nw.bytesOp), ratio(o.bytesOp, nw.bytesOp),
			human(o.allocsOp), human(nw.allocsOp), ratio(o.allocsOp, nw.allocsOp))
	}
}
