// benchcompare diffs two `make bench-json` records (test2json streams of a
// -bench run) benchstat-style: one row per benchmark with old → new ns/op,
// B/op, and allocs/op plus the ratio, so a perf PR can quote its before/after
// from two dated BENCH_*.json files without external tooling.
//
//	benchcompare OLD.json NEW.json
//
// With -gate it instead runs the perf-trajectory gate over the whole dated
// BENCH_*.json series: records sort by the (date, sequence) parsed from
// their filenames — never by mtime, which CI checkouts scramble — the newest
// record is the candidate, and every pinned kernel benchmark (-pin) must
// stay within -max-ratio of its best historical ns/op. Exit 1 when any
// pinned bench regressed past the ratio, 2 on usage errors.
//
//	benchcompare -gate BENCH_*.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// metrics is one benchmark's parsed numbers; zero means "not reported".
type metrics struct {
	nsOp     float64
	bytesOp  float64
	allocsOp float64
}

// event is the subset of a test2json record we need.
type event struct {
	Action string
	Test   string
	Output string
}

// parseFile extracts benchmark results from a test2json stream, keyed by the
// benchmark name (the event's Test field, which test2json sets for every
// output line a benchmark emits).
func parseFile(path string) (map[string]metrics, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	out := make(map[string]metrics)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		var e event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			continue // tolerate trailing garbage / non-JSON lines
		}
		if e.Action != "output" || !strings.Contains(e.Output, "ns/op") {
			continue
		}
		name := e.Test
		if name == "" {
			// Older streams leave Test empty for package-level output; the
			// bench name is then the line's first field.
			if fields := strings.Fields(e.Output); len(fields) > 0 && strings.HasPrefix(fields[0], "Benchmark") {
				name = fields[0]
			}
		}
		if !strings.HasPrefix(name, "Benchmark") {
			continue
		}
		m := out[name]
		// A bench line is tab-separated "<iters>\t<value> <unit>\t..." —
		// match on the unit suffix of each cell.
		for _, cell := range strings.Split(e.Output, "\t") {
			cell = strings.TrimSpace(cell)
			for _, want := range []struct {
				unit string
				dst  *float64
			}{{"ns/op", &m.nsOp}, {"B/op", &m.bytesOp}, {"allocs/op", &m.allocsOp}} {
				if v, ok := strings.CutSuffix(cell, " "+want.unit); ok {
					if x, err := strconv.ParseFloat(strings.TrimSpace(v), 64); err == nil {
						*want.dst = x
					}
				}
			}
		}
		out[name] = m
	}
	return out, sc.Err()
}

// ratio renders new/old as a benchstat-style delta ("-62.9%", "+4.0%", "~").
func ratio(old, new float64) string {
	if old == 0 || new == 0 {
		return "?"
	}
	d := (new - old) / old * 100
	if d > -0.5 && d < 0.5 {
		return "~"
	}
	return fmt.Sprintf("%+.1f%%", d)
}

func human(v float64) string {
	switch {
	case v == 0:
		return "-"
	case v >= 1e9:
		return fmt.Sprintf("%.3gG", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.3gM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.3gk", v/1e3)
	default:
		return fmt.Sprintf("%.3g", v)
	}
}

// benchFileName parses a record's basename: BENCH_YYYY-MM-DD.json or
// BENCH_YYYY-MM-DD.<n>.json for same-day reruns. The (date, seq) pair is the
// series order.
var benchFileName = regexp.MustCompile(`^BENCH_(\d{4}-\d{2}-\d{2})(?:\.(\d+))?\.json$`)

// record is one dated BENCH_*.json file in series order.
type record struct {
	path string
	date string
	seq  int
}

// sortRecords orders paths by their parsed (date, seq), rejecting filenames
// outside the BENCH_ naming scheme — the gate's ordering must come from the
// names alone, so it is identical on every checkout.
func sortRecords(paths []string) ([]record, error) {
	recs := make([]record, 0, len(paths))
	for _, p := range paths {
		m := benchFileName.FindStringSubmatch(filepath.Base(p))
		if m == nil {
			return nil, fmt.Errorf("%s: not a BENCH_YYYY-MM-DD[.n].json record", p)
		}
		seq := 1
		if m[2] != "" {
			seq, _ = strconv.Atoi(m[2])
		}
		recs = append(recs, record{path: p, date: m[1], seq: seq})
	}
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].date != recs[j].date {
			return recs[i].date < recs[j].date
		}
		return recs[i].seq < recs[j].seq
	})
	return recs, nil
}

// gate runs the perf-trajectory check and returns the exit status.
func gate(paths []string, maxRatio float64, pin *regexp.Regexp) int {
	recs, err := sortRecords(paths)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcompare:", err)
		return 2
	}
	if len(recs) < 2 {
		// A one-record series has no trajectory yet: pass, noting why, so the
		// gate is safe to wire into `make check` from the first record on.
		fmt.Printf("perf-gate: %d record(s), nothing to compare yet\n", len(recs))
		return 0
	}
	cand := recs[len(recs)-1]
	candM, err := parseFile(cand.path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcompare:", err)
		return 2
	}

	// Baseline: the best (minimum) historical ns/op per pinned bench across
	// every older record, so a slow outlier day never loosens the gate.
	base := make(map[string]float64)
	baseAt := make(map[string]string)
	for _, r := range recs[:len(recs)-1] {
		m, err := parseFile(r.path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchcompare:", err)
			return 2
		}
		for name, v := range m {
			if v.nsOp <= 0 || !pin.MatchString(name) {
				continue
			}
			if old, ok := base[name]; !ok || v.nsOp < old {
				base[name] = v.nsOp
				baseAt[name] = filepath.Base(r.path)
			}
		}
	}
	// The ranked set is the union of pinned benches with history and pinned
	// benches in the candidate: a bench first appearing today has no
	// trajectory yet and passes as NEW; one that vanished fails as MISSING.
	seen := make(map[string]bool, len(base))
	names := make([]string, 0, len(base))
	for n := range base {
		seen[n] = true
		names = append(names, n)
	}
	for n, v := range candM {
		if v.nsOp > 0 && pin.MatchString(n) && !seen[n] {
			seen[n] = true
			names = append(names, n)
		}
	}
	if len(names) == 0 {
		fmt.Fprintf(os.Stderr, "benchcompare: no benchmark matches pin %q in any record\n", pin)
		return 2
	}
	sort.Strings(names)

	fmt.Printf("perf-gate: candidate %s vs best of %d prior record(s), max ratio %.2fx\n",
		filepath.Base(cand.path), len(recs)-1, maxRatio)
	fmt.Printf("%-55s %10s %10s %7s  %s\n", "pinned benchmark", "best ns/op", "cand", "ratio", "verdict")
	failed := 0
	for _, n := range names {
		b, hasBase := base[n]
		c, ok := candM[n]
		row := strings.TrimPrefix(n, "Benchmark")
		if !hasBase {
			fmt.Printf("%-55s %10s %10s %7s  NEW (no baseline yet)\n", row, "-", human(c.nsOp), "-")
			continue
		}
		if !ok || c.nsOp <= 0 {
			// A pinned bench vanishing from the series is itself a regression:
			// the gate would otherwise go blind one rename at a time.
			fmt.Printf("%-55s %10s %10s %7s  MISSING (was in %s)\n", row, human(b), "-", "-", baseAt[n])
			failed++
			continue
		}
		r := c.nsOp / b
		verdict := "ok"
		if r > maxRatio {
			verdict = fmt.Sprintf("REGRESSED vs %s", baseAt[n])
			failed++
		}
		fmt.Printf("%-55s %10s %10s %6.2fx  %s\n", row, human(b), human(c.nsOp), r, verdict)
	}
	if failed > 0 {
		fmt.Printf("perf-gate: FAIL — %d pinned benchmark(s) over %.2fx of their best recorded ns/op\n", failed, maxRatio)
		return 1
	}
	fmt.Println("perf-gate: ok")
	return 0
}

func main() {
	gateMode := flag.Bool("gate", false, "perf-trajectory gate over a dated BENCH_*.json series instead of a two-file diff")
	maxRatio := flag.Float64("max-ratio", 1.3, "gate: fail when a pinned bench's ns/op exceeds this multiple of its best recorded value")
	pinExpr := flag.String("pin", "^Benchmark(PairDistance|OpticsRun|WorldGenerate)", "gate: regexp selecting the pinned kernel benchmarks")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: benchcompare OLD.json NEW.json\n       benchcompare -gate [-max-ratio 1.3] [-pin regexp] BENCH_*.json...\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *gateMode {
		pin, err := regexp.Compile(*pinExpr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchcompare: bad -pin:", err)
			os.Exit(2)
		}
		os.Exit(gate(flag.Args(), *maxRatio, pin))
	}

	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	oldM, err := parseFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcompare:", err)
		os.Exit(1)
	}
	newM, err := parseFile(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcompare:", err)
		os.Exit(1)
	}

	names := make([]string, 0, len(oldM))
	for n := range oldM {
		if _, ok := newM[n]; ok {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		fmt.Println("no common benchmarks")
		return
	}

	fmt.Printf("%-55s %10s %10s %8s %10s %10s %8s %9s %9s %8s\n",
		"benchmark ("+flag.Arg(0)+" → "+flag.Arg(1)+")",
		"ns/op", "ns/op'", "Δ", "B/op", "B/op'", "Δ", "allocs", "allocs'", "Δ")
	for _, n := range names {
		o, nw := oldM[n], newM[n]
		fmt.Printf("%-55s %10s %10s %8s %10s %10s %8s %9s %9s %8s\n",
			strings.TrimPrefix(n, "Benchmark"),
			human(o.nsOp), human(nw.nsOp), ratio(o.nsOp, nw.nsOp),
			human(o.bytesOp), human(nw.bytesOp), ratio(o.bytesOp, nw.bytesOp),
			human(o.allocsOp), human(nw.allocsOp), ratio(o.allocsOp, nw.allocsOp))
	}
}
