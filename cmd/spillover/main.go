// Command spillover runs the §4 experiments: the peering survey (§4.2.1),
// the lockdown replay and diurnal sweep (§4.1), the PNI census (§4.2.2), and
// the facility-failure cascade study (§4.3).
package main

import (
	"flag"
	"fmt"
	"log"

	"offnetrisk"
	"offnetrisk/internal/capacity"
	"offnetrisk/internal/cascade"
	"offnetrisk/internal/sweep"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("spillover: ")
	seed := flag.Int64("seed", 42, "world seed")
	tiny := flag.Bool("tiny", false, "use the miniature test world")
	large := flag.Bool("large", false, "use the large (paper-sized) world")
	storm := flag.Bool("storm", false, "also run the perfect-storm scenario")
	mitigate := flag.Bool("mitigate", false, "also run the §6 isolation what-if")
	risk := flag.Bool("risk", false, "also run the Monte Carlo colocation-risk ablation")
	sweeps := flag.Bool("sweeps", false, "also run the parameter sensitivity sweeps")
	flag.Parse()

	scale := offnetrisk.ScaleDefault
	if *tiny {
		scale = offnetrisk.ScaleTiny
	}
	if *large {
		scale = offnetrisk.ScaleLarge
	}
	p := offnetrisk.NewPipeline(*seed, scale)

	ps, err := p.PeeringSurvey()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(ps)
	fmt.Println()

	cap, err := p.CapacityStudy()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(cap)
	fmt.Println()

	cas, err := p.CascadeStudy()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(cas)

	if *mitigate {
		mit, err := p.MitigationStudy()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println()
		fmt.Print(mit)
	}

	if *risk {
		w, d, err := p.World2023()
		if err != nil {
			log.Fatal(err)
		}
		decol := cascade.Decolocate(d)
		mCol := capacity.Build(d, capacity.DefaultConfig(*seed))
		mDecol := capacity.Build(decol, capacity.DefaultConfig(*seed))
		col := cascade.MonteCarlo(mCol, d, 3, 120, *seed)
		dec := cascade.MonteCarlo(mDecol, decol, 3, 120, *seed)
		fmt.Printf("\nMonte Carlo risk (3 random facility outages, %d trials):\n", col.Trials)
		fmt.Printf("  colocated (today):  %.2f hypergiants hit/outage, %.1fM users affected on average\n",
			col.MeanHGs, col.MeanAffected/1e6)
		fmt.Printf("  de-colocated:       %.2f hypergiants hit/outage, %.1fM users affected on average\n",
			dec.MeanHGs, dec.MeanAffected/1e6)
		_ = w
	}

	if *sweeps {
		fmt.Println()
		if r, err := sweep.ColocationPropensity(*seed, []float64{0.3, 0.6, 0.86, 0.95}); err == nil {
			fmt.Print(r)
		} else {
			log.Fatal(err)
		}
		if r, err := sweep.SharedHeadroom(*seed, []float64{1.05, 1.25, 1.5, 2.0}); err == nil {
			fmt.Print(r)
		} else {
			log.Fatal(err)
		}
		if r, err := sweep.DemandSpike(*seed, []float64{1.0, 1.3, 1.58, 2.0, 3.0}); err == nil {
			fmt.Print(r)
		} else {
			log.Fatal(err)
		}
	}

	if *storm {
		sc, err := p.PerfectStorm(12, 1.5)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nperfect storm (12 facilities down, +50%% surge on all hypergiants):\n")
		fmt.Printf("  %s at %s; direct users %.1fM; collateral: %d ISPs / %.1fM users; congested: %d IXPs, %d transits\n",
			sc.ISP, sc.Facility, sc.DirectUsers/1e6, sc.CollateralISPs, sc.CollateralUsers/1e6,
			sc.CongestedIXPs, sc.CongestedTransits)
	}
}
