// Command spillover runs the §4 experiments: the peering survey (§4.2.1),
// the lockdown replay and diurnal sweep (§4.1), the PNI census (§4.2.2), and
// the facility-failure cascade study (§4.3).
package main

import (
	"flag"
	"fmt"
	"os"

	"offnetrisk/internal/capacity"
	"offnetrisk/internal/cascade"
	"offnetrisk/internal/cli"
	"offnetrisk/internal/obs"
	"offnetrisk/internal/sweep"
)

func main() {
	common := cli.Register(flag.CommandLine)
	storm := flag.Bool("storm", false, "also run the perfect-storm scenario")
	mitigate := flag.Bool("mitigate", false, "also run the §6 isolation what-if")
	risk := flag.Bool("risk", false, "also run the Monte Carlo colocation-risk ablation")
	sweeps := flag.Bool("sweeps", false, "also run the parameter sensitivity sweeps")
	flag.Parse()

	if common.HandleScenarioList() {
		return
	}
	logger := common.Logger("spillover")
	fatal := func(msg string, err error) {
		logger.Error(msg, "err", err)
		os.Exit(1)
	}
	ctx, stop := common.Context()
	defer stop()

	p, err := common.Pipeline()
	if err != nil {
		fatal("invalid flags", err)
	}
	hours, sched, err := common.Temporal()
	if err != nil {
		fatal("invalid temporal flags", err)
	}
	tr := obs.NewTracer()
	p.Instrument(tr)
	stopObs, err := common.Observability(ctx, tr, logger)
	if err != nil {
		fatal("observability setup failed", err)
	}
	defer stopObs()

	logger.Debug("running peering survey", "seed", common.Seed, "scale", common.Scale().String())
	ps, err := p.PeeringSurveyContext(ctx)
	if err != nil {
		fatal("peering survey failed", err)
	}
	fmt.Print(ps)
	fmt.Println()

	logger.Debug("running capacity study")
	cap, err := p.CapacityStudyContext(ctx)
	if err != nil {
		fatal("capacity study failed", err)
	}
	fmt.Print(cap)
	fmt.Println()

	logger.Debug("running cascade study")
	cas, err := p.CascadeStudyContext(ctx)
	if err != nil {
		fatal("cascade study failed", err)
	}
	fmt.Print(cas)

	if *mitigate {
		mit, err := p.MitigationStudyContext(ctx)
		if err != nil {
			fatal("mitigation study failed", err)
		}
		fmt.Println()
		fmt.Print(mit)
	}

	if *risk {
		w, d, err := p.World2023()
		if err != nil {
			fatal("world build failed", err)
		}
		decol := cascade.Decolocate(d)
		ccfg := capacity.ConfigFromScenario(p.Scenario(), common.Seed)
		mCol := capacity.Build(d, ccfg)
		mDecol := capacity.Build(decol, ccfg)
		col, err := cascade.MonteCarloContext(ctx, mCol, d, 3, 120, common.Seed, common.Workers)
		if err != nil {
			fatal("Monte Carlo (colocated) failed", err)
		}
		dec, err := cascade.MonteCarloContext(ctx, mDecol, decol, 3, 120, common.Seed, common.Workers)
		if err != nil {
			fatal("Monte Carlo (de-colocated) failed", err)
		}
		fmt.Printf("\nMonte Carlo risk (3 random facility outages, %d trials):\n", col.Trials)
		fmt.Printf("  colocated (today):  %.2f hypergiants hit/outage, %.1fM users affected on average\n",
			col.MeanHGs, col.MeanAffected/1e6)
		fmt.Printf("  de-colocated:       %.2f hypergiants hit/outage, %.1fM users affected on average\n",
			dec.MeanHGs, dec.MeanAffected/1e6)
		_ = w
	}

	if *sweeps {
		// Interactive use gets the timed rendering (wall-clock per sweep
		// point, from the sweep's spans); REPORT.md keeps the untimed one.
		fmt.Println()
		if r, err := sweep.ColocationPropensity(common.Seed, []float64{0.3, 0.6, 0.86, 0.95}); err == nil {
			fmt.Print(r.TimedString())
		} else {
			fatal("colocation-propensity sweep failed", err)
		}
		if r, err := sweep.SharedHeadroom(common.Seed, []float64{1.05, 1.25, 1.5, 2.0}); err == nil {
			fmt.Print(r.TimedString())
		} else {
			fatal("shared-headroom sweep failed", err)
		}
		if r, err := sweep.DemandSpike(common.Seed, []float64{1.0, 1.3, 1.58, 2.0, 3.0}); err == nil {
			fmt.Print(r.TimedString())
		} else {
			fatal("demand-spike sweep failed", err)
		}
	}

	if hours > 0 {
		traj, err := p.TemporalReplayContext(ctx, hours, sched, common.EventSink())
		if err != nil {
			fatal("temporal replay failed", err)
		}
		fmt.Println()
		fmt.Println(traj.Summary())
	}

	if *storm {
		sc, err := p.PerfectStormContext(ctx, 12, 1.5)
		if err != nil {
			fatal("perfect storm failed", err)
		}
		fmt.Printf("\nperfect storm (12 facilities down, +50%% surge on all hypergiants):\n")
		fmt.Printf("  %s at %s; direct users %.1fM; collateral: %d ISPs / %.1fM users; congested: %d IXPs, %d transits\n",
			sc.ISP, sc.Facility, sc.DirectUsers/1e6, sc.CollateralISPs, sc.CollateralUsers/1e6,
			sc.CongestedIXPs, sc.CongestedTransits)
	}
}
