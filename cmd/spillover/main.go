// Command spillover runs the §4 experiments: the peering survey (§4.2.1),
// the lockdown replay and diurnal sweep (§4.1), the PNI census (§4.2.2), and
// the facility-failure cascade study (§4.3).
package main

import (
	"flag"
	"fmt"
	"os"

	"offnetrisk"
	"offnetrisk/internal/capacity"
	"offnetrisk/internal/cascade"
	"offnetrisk/internal/obs"
	"offnetrisk/internal/sweep"
)

func main() {
	seed := flag.Int64("seed", 42, "world seed")
	tiny := flag.Bool("tiny", false, "use the miniature test world")
	large := flag.Bool("large", false, "use the large (paper-sized) world")
	storm := flag.Bool("storm", false, "also run the perfect-storm scenario")
	mitigate := flag.Bool("mitigate", false, "also run the §6 isolation what-if")
	risk := flag.Bool("risk", false, "also run the Monte Carlo colocation-risk ablation")
	sweeps := flag.Bool("sweeps", false, "also run the parameter sensitivity sweeps")
	verbose := flag.Bool("v", false, "verbose (debug-level) logging")
	debugAddr := flag.String("debug-addr", "", "serve /debug/pprof, /debug/vars and /debug/obs on this address")
	flag.Parse()

	logger := obs.SetupCLI("spillover", *verbose)
	fatal := func(msg string, err error) {
		logger.Error(msg, "err", err)
		os.Exit(1)
	}

	scale := offnetrisk.ScaleDefault
	if *tiny {
		scale = offnetrisk.ScaleTiny
	}
	if *large {
		scale = offnetrisk.ScaleLarge
	}
	p := offnetrisk.NewPipeline(*seed, scale)

	tr := obs.NewTracer()
	p.Instrument(tr)
	if *debugAddr != "" {
		addr, err := obs.ServeDebug(*debugAddr, tr)
		if err != nil {
			fatal("debug endpoint failed to start", err)
		}
		logger.Info("debug endpoint listening", "url", "http://"+addr+"/debug/obs")
	}

	logger.Debug("running peering survey", "seed", *seed, "scale", scale.String())
	ps, err := p.PeeringSurvey()
	if err != nil {
		fatal("peering survey failed", err)
	}
	fmt.Print(ps)
	fmt.Println()

	logger.Debug("running capacity study")
	cap, err := p.CapacityStudy()
	if err != nil {
		fatal("capacity study failed", err)
	}
	fmt.Print(cap)
	fmt.Println()

	logger.Debug("running cascade study")
	cas, err := p.CascadeStudy()
	if err != nil {
		fatal("cascade study failed", err)
	}
	fmt.Print(cas)

	if *mitigate {
		mit, err := p.MitigationStudy()
		if err != nil {
			fatal("mitigation study failed", err)
		}
		fmt.Println()
		fmt.Print(mit)
	}

	if *risk {
		w, d, err := p.World2023()
		if err != nil {
			fatal("world build failed", err)
		}
		decol := cascade.Decolocate(d)
		mCol := capacity.Build(d, capacity.DefaultConfig(*seed))
		mDecol := capacity.Build(decol, capacity.DefaultConfig(*seed))
		col := cascade.MonteCarlo(mCol, d, 3, 120, *seed)
		dec := cascade.MonteCarlo(mDecol, decol, 3, 120, *seed)
		fmt.Printf("\nMonte Carlo risk (3 random facility outages, %d trials):\n", col.Trials)
		fmt.Printf("  colocated (today):  %.2f hypergiants hit/outage, %.1fM users affected on average\n",
			col.MeanHGs, col.MeanAffected/1e6)
		fmt.Printf("  de-colocated:       %.2f hypergiants hit/outage, %.1fM users affected on average\n",
			dec.MeanHGs, dec.MeanAffected/1e6)
		_ = w
	}

	if *sweeps {
		// Interactive use gets the timed rendering (wall-clock per sweep
		// point, from the sweep's spans); REPORT.md keeps the untimed one.
		fmt.Println()
		if r, err := sweep.ColocationPropensity(*seed, []float64{0.3, 0.6, 0.86, 0.95}); err == nil {
			fmt.Print(r.TimedString())
		} else {
			fatal("colocation-propensity sweep failed", err)
		}
		if r, err := sweep.SharedHeadroom(*seed, []float64{1.05, 1.25, 1.5, 2.0}); err == nil {
			fmt.Print(r.TimedString())
		} else {
			fatal("shared-headroom sweep failed", err)
		}
		if r, err := sweep.DemandSpike(*seed, []float64{1.0, 1.3, 1.58, 2.0, 3.0}); err == nil {
			fmt.Print(r.TimedString())
		} else {
			fatal("demand-spike sweep failed", err)
		}
	}

	if *storm {
		sc, err := p.PerfectStorm(12, 1.5)
		if err != nil {
			fatal("perfect storm failed", err)
		}
		fmt.Printf("\nperfect storm (12 facilities down, +50%% surge on all hypergiants):\n")
		fmt.Printf("  %s at %s; direct users %.1fM; collateral: %d ISPs / %.1fM users; congested: %d IXPs, %d transits\n",
			sc.ISP, sc.Facility, sc.DirectUsers/1e6, sc.CollateralISPs, sc.CollateralUsers/1e6,
			sc.CongestedIXPs, sc.CongestedTransits)
	}
}
