// Command obsprofile analyzes a run's execution timeline offline: it reads a
// run manifest (cmd/reproduce -manifest) and prints the performance profile —
// critical path, top spans by exclusive self-time, and per-region worker
// utilization — as the same Markdown section REPORT.md embeds.
//
//	obsprofile -top 10 out/manifest.json
//	obsprofile -validate-trace out/trace.json out/manifest.json
//
// With -validate-trace the command additionally checks a Perfetto trace
// export (the -trace flag's output) against the trace-event schema and
// summarizes its tracks, so CI can gate on a structurally valid trace
// without loading it in a UI. Exit status: 0 on success, 1 when the trace
// fails validation, 2 on usage or unreadable inputs.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"offnetrisk/internal/obs"
)

func main() {
	top := flag.Int("top", 10, "entries in the self-time ranking")
	tracePath := flag.String("validate-trace", "", "also validate this trace-event JSON export and summarize its tracks")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: obsprofile [flags] <manifest.json>\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	m, err := obs.ReadManifest(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "obsprofile:", err)
		os.Exit(2)
	}
	if len(m.Stages) == 0 {
		fmt.Fprintln(os.Stderr, "obsprofile: manifest has no stages (was the run instrumented?)")
		os.Exit(2)
	}

	prof := obs.BuildProfile(m.Stages, *top)
	fmt.Printf("# Performance profile — %s, seed %d, scale %s\n\n", m.Tool, m.Seed, m.Scale)
	fmt.Print(prof.Markdown())

	if *tracePath != "" {
		tf, err := obs.ReadTraceFile(*tracePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "obsprofile:", err)
			os.Exit(2)
		}
		if err := obs.ValidateTrace(tf); err != nil {
			fmt.Fprintln(os.Stderr, "obsprofile: trace INVALID:", err)
			os.Exit(1)
		}
		fmt.Printf("\ntrace %s: valid trace-event JSON — %d events, %d spans\n",
			*tracePath, len(tf.TraceEvents), len(tf.SpanEvents()))
		if tracks := tf.CounterTracks(); len(tracks) > 0 {
			fmt.Printf("counter tracks: %s\n", strings.Join(tracks, ", "))
		}
		if instants := tf.InstantNames(); len(instants) > 0 {
			fmt.Printf("instant events: %s\n", strings.Join(instants, ", "))
		}
	}
}
