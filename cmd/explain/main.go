// Command explain answers "why is this number what it is" against a lineage
// capture (any cmd run with -lineage). It loads the JSONL file — verifying
// the schema, record count and digest — and prints the evidence chain behind
// the queried slice of the pipeline: every sampled decision whose group,
// subject or evidence mentions the queried ISP, hypergiant or address, in
// pipeline-stage order, with the per-stage accounting underneath.
//
//	explain -lineage run.lineage.jsonl -isp 4444 -hg Google
//	explain -lineage run.lineage.jsonl -addr 10.3.7.12
//	explain -lineage run.lineage.jsonl -list
//
// Exit status: 0 when the query matched records, 1 when it matched none,
// 2 on usage errors or an unreadable/corrupt lineage file.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"offnetrisk/internal/obs"
)

// stageOrder lists the instrumented stages in pipeline order, so an evidence
// chain reads the way the data flowed: classification, then measurement
// filtering, then clustering, validation, peering, mitigation, steering.
var stageOrder = []string{
	"offnetmap.classify",
	"ping.filter",
	"ping.isp_gate",
	"coloc.pairs",
	"coloc.cluster",
	"rdns.metro",
	"tracert.hops",
	"cascade.mitigation",
	"steer.mapping",
}

func stageRank(stage string) int {
	for i, s := range stageOrder {
		if s == stage {
			return i
		}
	}
	return len(stageOrder)
}

func main() {
	lineagePath := flag.String("lineage", "", "lineage JSONL capture to query (required)")
	isp := flag.Int64("isp", 0, "filter to decisions about this ISP ASN")
	hg := flag.String("hg", "", "filter to decisions about this hypergiant (e.g. Google)")
	addr := flag.String("addr", "", "filter to decisions about this server address")
	stage := flag.String("stage", "", "filter to one lineage stage (e.g. offnetmap.classify)")
	list := flag.Bool("list", false, "print the capture's stages and counts, then exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: explain -lineage <file.jsonl> [-isp <asn>] [-hg <name>] [-addr <ip>] [-stage <name>] [-list]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *lineagePath == "" {
		flag.Usage()
		os.Exit(2)
	}

	f, err := obs.ReadLineageFile(*lineagePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "explain:", err)
		os.Exit(2)
	}
	fmt.Printf("lineage: %s — %d records, digest %s\n", *lineagePath, f.Summary.Records, f.Summary.Digest)

	if *list || (*isp == 0 && *hg == "" && *addr == "" && *stage == "") {
		printStages(f)
		if !*list {
			fmt.Println("\n(no query given — pass -isp/-hg/-addr/-stage to print evidence chains)")
		}
		return
	}

	matched := query(f.Records, *isp, *hg, *addr, *stage)
	if len(matched) == 0 {
		fmt.Println("no lineage records match the query")
		os.Exit(1)
	}

	// Widen the chain: any address the direct matches name — as subject, as a
	// pair member, or as evidence — pulls in that address's decisions at every
	// other stage, so the output is the full story of the queried cell.
	if *addr == "" {
		matched = widenByAddr(f.Records, matched, *stage)
	}
	printChains(matched, f.Summary.Stages)
}

// printStages renders the capture's per-stage accounting.
func printStages(f *obs.LineageFile) {
	fmt.Printf("\n%-22s %10s %10s %10s  drop breakdown\n", "stage", "in", "kept", "dropped")
	for _, s := range f.Summary.Stages {
		var reasons []string
		for _, d := range s.Drops {
			reasons = append(reasons, fmt.Sprintf("%s=%d", d.Reason, d.N))
		}
		breakdown := strings.Join(reasons, ", ")
		if breakdown == "" {
			breakdown = "—"
		}
		fmt.Printf("%-22s %10d %10d %10d  %s\n", s.Stage, s.In, s.Kept, s.Dropped(), breakdown)
	}
}

// tokens splits a group key ("hg=Google|isp=4444|pass=2023") into its
// key=value parts.
func tokens(group string) []string {
	if group == "" {
		return nil
	}
	return strings.Split(group, "|")
}

// query selects the records directly matching every given filter.
func query(recs []obs.LineageDecision, isp int64, hg, addr, stage string) []obs.LineageDecision {
	ispTok := fmt.Sprintf("isp=%d", isp)
	var out []obs.LineageDecision
	for _, r := range recs {
		if stage != "" && r.Stage != stage {
			continue
		}
		if isp != 0 && !mentions(r, ispTok) {
			continue
		}
		if hg != "" && !mentionsHG(r, hg) {
			continue
		}
		if addr != "" && !mentionsAddr(r, addr) {
			continue
		}
		out = append(out, r)
	}
	return out
}

// mentions reports whether a key=value token appears in the record's group,
// as its subject, or as an evidence pair.
func mentions(r obs.LineageDecision, tok string) bool {
	if r.Subject == tok {
		return true
	}
	for _, t := range tokens(r.Group) {
		if t == tok {
			return true
		}
	}
	eq := strings.IndexByte(tok, '=')
	for _, kv := range r.Evidence {
		if eq > 0 && kv.K == tok[:eq] && kv.V == tok[eq+1:] {
			return true
		}
	}
	return false
}

// mentionsHG matches the hypergiant name case-insensitively against group
// tokens and hypergiant-valued evidence keys.
func mentionsHG(r obs.LineageDecision, hg string) bool {
	want := strings.ToLower(hg)
	for _, t := range tokens(r.Group) {
		if v, ok := strings.CutPrefix(t, "hg="); ok && strings.ToLower(v) == want {
			return true
		}
	}
	for _, kv := range r.Evidence {
		switch kv.K {
		case "hg", "hg_a", "hg_b", "offender":
			if strings.ToLower(kv.V) == want {
				return true
			}
		}
	}
	return false
}

// mentionsAddr matches an address against the subject (including pair
// subjects "a|b") and evidence values.
func mentionsAddr(r obs.LineageDecision, addr string) bool {
	for _, part := range strings.Split(r.Subject, "|") {
		if part == addr {
			return true
		}
	}
	for _, kv := range r.Evidence {
		if kv.V == addr {
			return true
		}
	}
	return false
}

// widenByAddr adds every record about an address the directly-matched
// records mention, preserving the stage filter if one was given.
func widenByAddr(all, matched []obs.LineageDecision, stage string) []obs.LineageDecision {
	addrs := make(map[string]bool)
	for _, r := range matched {
		for _, part := range strings.Split(r.Subject, "|") {
			if strings.Count(part, ".") == 3 || strings.Contains(part, ":") {
				addrs[part] = true
			}
		}
	}
	if len(addrs) == 0 {
		return matched
	}
	seen := make(map[string]bool, len(matched))
	for _, r := range matched {
		seen[key(r)] = true
	}
	for _, r := range all {
		if stage != "" && r.Stage != stage {
			continue
		}
		if seen[key(r)] {
			continue
		}
		for _, part := range strings.Split(r.Subject, "|") {
			if addrs[part] {
				matched = append(matched, r)
				seen[key(r)] = true
				break
			}
		}
	}
	return matched
}

func key(r obs.LineageDecision) string {
	return r.Stage + "\x00" + r.Group + "\x00" + r.Subject + "\x00" + r.Outcome + "\x00" + r.ReasonCode
}

// printChains renders the matched records grouped by stage in pipeline
// order, each with its evidence, followed by the involved stages' totals.
func printChains(recs []obs.LineageDecision, stages []obs.LineageStageCount) {
	sort.SliceStable(recs, func(i, j int) bool {
		ri, rj := stageRank(recs[i].Stage), stageRank(recs[j].Stage)
		if ri != rj {
			return ri < rj
		}
		if recs[i].Stage != recs[j].Stage {
			return recs[i].Stage < recs[j].Stage
		}
		if recs[i].Group != recs[j].Group {
			return recs[i].Group < recs[j].Group
		}
		return recs[i].Subject < recs[j].Subject
	})

	involved := make(map[string]bool)
	last := ""
	for _, r := range recs {
		involved[r.Stage] = true
		if r.Stage != last {
			fmt.Printf("\n== %s ==\n", r.Stage)
			last = r.Stage
		}
		head := r.Outcome
		if r.ReasonCode != "" {
			head += "/" + r.ReasonCode
		}
		fmt.Printf("  [%s] %s", head, r.Subject)
		if r.Group != "" {
			fmt.Printf("  (%s)", r.Group)
		}
		fmt.Println()
		for _, kv := range r.Evidence {
			fmt.Printf("      %s = %s\n", kv.K, kv.V)
		}
	}

	fmt.Printf("\n%d matching records across %d stages\n", len(recs), len(involved))
	for _, s := range stages {
		if involved[s.Stage] {
			fmt.Printf("  %s: in=%d kept=%d dropped=%d\n", s.Stage, s.In, s.Kept, s.Dropped())
		}
	}
}
