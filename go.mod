module offnetrisk

go 1.22
