package offnetrisk

import (
	"context"
	"fmt"
	"strings"

	"offnetrisk/internal/capacity"
	"offnetrisk/internal/cascade"
	"offnetrisk/internal/hypergiant"
	"offnetrisk/internal/steer"
)

// MappingRow is one hypergiant's outcome for the DNS-based user→offnet
// mapping technique at one steering era.
type MappingRow struct {
	Hypergiant  string
	Mode        string
	CoveragePct float64
	AccuracyPct float64
	// DiscoveryPct is the share of serving offnets the technique surfaced.
	DiscoveryPct float64
}

// MappingResult reproduces the §3.2 methodological point: the 2013 DNS
// technique recovered which users are served from which offnets; under
// today's steering it cannot.
type MappingResult struct {
	Era2013 []MappingRow
	Era2023 []MappingRow
}

// MappingStudy runs the Calder-2013 ECS mapping technique against both
// steering eras on the 2023 deployment.
func (p *Pipeline) MappingStudy() (*MappingResult, error) {
	return p.MappingStudyContext(context.Background())
}

// MappingStudyContext is MappingStudy with cancellation (the ECS probes are
// cheap and serial, so the context only gates entry).
func (p *Pipeline) MappingStudyContext(ctx context.Context) (*MappingResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	root := p.span("mapping-study")
	defer root.End()
	w, d, err := p.deployment(hypergiant.Epoch2023)
	if err != nil {
		return nil, err
	}
	resolvers := steer.Resolvers(w, 8, p.Seed)
	sample := 6
	if p.Scale == ScaleDefault {
		sample = 3
	}
	out := &MappingResult{}
	sp := p.span("mapping-study/era-2013")
	for _, r := range steer.MapUsers(d, steer.Modes2013(), resolvers, sample, p.Seed) {
		out.Era2013 = append(out.Era2013, mappingRow(r))
	}
	sp.End()
	sp = p.span("mapping-study/era-2023")
	for _, r := range steer.MapUsers(d, steer.Modes2023(), resolvers, sample, p.Seed) {
		out.Era2023 = append(out.Era2023, mappingRow(r))
	}
	sp.End()
	return out, nil
}

func mappingRow(r steer.MappingResult) MappingRow {
	return MappingRow{
		Hypergiant:   r.HG.String(),
		Mode:         r.Mode.String(),
		CoveragePct:  r.CoveragePct(),
		AccuracyPct:  r.AccuracyPct(),
		DiscoveryPct: r.DiscoveryPct(),
	}
}

// String renders the era comparison.
func (r *MappingResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "§3.2 user→offnet DNS mapping technique (Calder et al. 2013)\n")
	render := func(title string, rows []MappingRow) {
		fmt.Fprintf(&b, "%s\n", title)
		for _, row := range rows {
			fmt.Fprintf(&b, "  %-8s %-14s coverage %5.1f%%  accuracy %5.1f%%  offnets found %5.1f%%\n",
				row.Hypergiant, row.Mode, row.CoveragePct, row.AccuracyPct, row.DiscoveryPct)
		}
	}
	render("2013-era steering:", r.Era2013)
	render("2023 steering:", r.Era2023)
	return b.String()
}

// MitigationResult reproduces the §6 what-if: per-hypergiant capacity
// isolation on shared links versus today's shared fate.
type MitigationResult struct {
	Scenarios              int
	MeanCollateralShared   float64
	MeanCollateralIsolated float64
	FullyNeutralizedPct    float64
}

// MitigationStudy sweeps top-facility failures under both regimes.
func (p *Pipeline) MitigationStudy() (*MitigationResult, error) {
	return p.MitigationStudyContext(context.Background())
}

// MitigationStudyContext is MitigationStudy with cancellation; the
// shared-vs-isolated sweep fans out across p.Workers goroutines.
func (p *Pipeline) MitigationStudyContext(ctx context.Context) (*MitigationResult, error) {
	root := p.span("mitigation-study")
	defer root.End()
	_, d, err := p.deployment(hypergiant.Epoch2023)
	if err != nil {
		return nil, err
	}
	m := capacity.Build(d, capacity.ConfigFromScenario(p.spec(), p.Seed))
	sctx, sp := p.spanCtx(ctx, "mitigation-study/sweep")
	st, err := cascade.MitigationSweepContext(sctx, m, d, d.HostingISPs(), p.Workers)
	if err != nil {
		sp.End()
		return nil, err
	}
	sp.SetAttr("scenarios", st.Scenarios)
	sp.End()
	out := &MitigationResult{
		Scenarios:              st.Scenarios,
		MeanCollateralShared:   st.MeanCollateralShared,
		MeanCollateralIsolated: st.MeanCollateralIsolated,
	}
	if st.Scenarios > 0 {
		out.FullyNeutralizedPct = 100 * float64(st.ScenariosFullyNeutralized) / float64(st.Scenarios)
	}
	return out, nil
}

// String renders the mitigation comparison.
func (r *MitigationResult) String() string {
	return fmt.Sprintf(
		"§6 isolation what-if over %d facility failures: mean collateral ISPs %.2f (shared fate) → %.2f (per-HG slices); %.0f%% of damaging scenarios fully neutralized\n",
		r.Scenarios, r.MeanCollateralShared, r.MeanCollateralIsolated, r.FullyNeutralizedPct)
}
