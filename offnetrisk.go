// Package offnetrisk reproduces "The Central Problem with Distributed
// Content: Common CDN Deployments Centralize Traffic In A Risky Way"
// (HotNets 2023) as a runnable system: a synthetic Internet with hypergiant
// offnet deployments, the paper's measurement pipelines (TLS-scan offnet
// discovery, latency-based OPTICS colocation clustering, reverse-DNS
// validation, cloud traceroute peering inference), and the capacity /
// cascade models behind its risk argument.
//
// The entry point is Pipeline: configure a world size and a seed, then run
// the experiment corresponding to each table and figure of the paper.
//
//	p := offnetrisk.NewPipeline(42, offnetrisk.ScaleDefault)
//	t1, err := p.Table1()           // §2.2, Table 1
//	col, err := p.Colocation()      // §3.2, Table 2 + Figures 1–2
//	ps, err := p.PeeringSurvey()    // §4.2.1
//	cap, err := p.CapacityStudy()   // §4.1 + §4.2.2
//	cas, err := p.CascadeStudy()    // §3.3 + §4.3
//
// All randomness derives from the pipeline seed; equal seeds reproduce
// identical results bit for bit.
package offnetrisk

import (
	"context"
	"fmt"
	"sync"

	"offnetrisk/internal/chaos"
	"offnetrisk/internal/hypergiant"
	"offnetrisk/internal/inet"
	"offnetrisk/internal/obs"
	"offnetrisk/internal/par"
	"offnetrisk/internal/scenario"
)

// mSnapshotLoads is registered lazily so snapshot-free runs keep their
// manifest metric set — and therefore the committed goldens — byte-identical.
var mSnapshotLoads = obs.NewLazyCounter("world.snapshot_loads",
	"worlds streamed from a binary snapshot instead of re-synthesized")

// Scale selects how large a synthetic Internet the pipeline builds.
type Scale int

// Scales. ScaleTiny runs in well under a second and is meant for tests;
// ScaleDefault approximates the structural ratios of the paper's datasets
// and runs in seconds.
const (
	ScaleTiny Scale = iota
	ScaleDefault
	ScaleLarge
)

// Pipeline owns a seeded reproduction run. Worlds and deployments are built
// lazily, once per epoch, and shared across experiments.
type Pipeline struct {
	Seed  int64
	Scale Scale

	// Workers bounds the worker pools behind every parallel experiment
	// stage (ping campaign, OPTICS clustering, peering survey, scenario
	// sweeps, Monte Carlo trials); <= 0 means GOMAXPROCS. All per-task
	// randomness is derived per unit of work (rngutil.Derive and friends),
	// so results are bit-for-bit identical at any worker count — Workers
	// trades wall-clock time only, never output.
	Workers int

	// Chaos optionally injects deterministic, seed-derived faults into
	// every measurement stage (ping campaign, traceroute survey, TLS-scan
	// classification); nil — the default — runs clean. Fault decisions are
	// pure hashes of (chaos seed, item), so a fixed (Seed, chaos seed,
	// Workers) triple reproduces byte-identically at any worker count, and
	// every injected fault is visible as a chaos.* counter or a chaos_*
	// funnel drop reason. See internal/chaos.
	Chaos *chaos.Injector

	// Shards partitions the sharded world builder's entity index space; <= 0
	// means the builder's machine-independent default. Like Workers it is
	// output-invariant — the composed world is byte-identical at any shard
	// count — and it is ignored entirely by the legacy builder (scenarios
	// whose topology is not sharded).
	Shards int

	// SnapshotPath, when set, spills the generated world to a binary
	// snapshot on first build and streams it back on every later build
	// (including later epochs of the same run) instead of re-synthesizing.
	// The snapshot is validated against the pipeline's world config and
	// scenario hash; a mismatch is a hard error, mirroring the runsdiff
	// drift contract.
	SnapshotPath string

	// Spec is the resolved scenario the pipeline builds its world from; nil
	// means the registry's default scenario (the paper's hard-coded world).
	// At ScaleTiny/ScaleLarge the spec's topology section is overridden by
	// the literal tiny/large topology, so `-scenario X -tiny` means
	// "scenario X's deployments, traffic and measurements at test scale" —
	// the combination the golden-gated scenario matrix runs.
	Spec *scenario.Spec

	// tracer records per-stage spans when instrumentation is attached via
	// Instrument; nil (the default) disables tracing at zero cost. Tracing
	// never feeds back into experiment results, so instrumented and plain
	// runs of the same seed are bit-for-bit identical.
	tracer *obs.Tracer

	mu     sync.Mutex
	worlds map[hypergiant.Epoch]*inet.World
	deps   map[hypergiant.Epoch]*hypergiant.Deployment
}

// NewPipeline creates a pipeline for the given seed and scale, running the
// default scenario.
func NewPipeline(seed int64, scale Scale) *Pipeline {
	return &Pipeline{
		Seed:   seed,
		Scale:  scale,
		worlds: make(map[hypergiant.Epoch]*inet.World),
		deps:   make(map[hypergiant.Epoch]*hypergiant.Deployment),
	}
}

// NewPipelineFromSpec creates a pipeline running a resolved scenario at
// ScaleDefault (the spec's own topology). Combine with Scale overrides via
// the struct field if test-scale runs of the scenario are wanted.
func NewPipelineFromSpec(sp *scenario.Spec, seed int64) *Pipeline {
	p := NewPipeline(seed, ScaleDefault)
	p.Spec = sp
	return p
}

// spec returns the pipeline's scenario, defaulting to the registry's
// default world.
func (p *Pipeline) spec() *scenario.Spec {
	if p.Spec != nil {
		return p.Spec
	}
	return scenario.Default()
}

// Scenario exposes the resolved scenario the pipeline runs (never nil), so
// commands that drive measurement stages directly share the same spec.
func (p *Pipeline) Scenario() *scenario.Spec { return p.spec() }

// Instrument attaches a span tracer; every experiment method then records a
// root span over its internal stages, and the chaos injector (if any) gains
// the tracer's timeline for fault instant events. Pass nil to disable again.
func (p *Pipeline) Instrument(t *obs.Tracer) {
	p.tracer = t
	p.Chaos.SetTimeline(t)
}

// Tracer returns the attached tracer (nil when uninstrumented).
func (p *Pipeline) Tracer() *obs.Tracer { return p.tracer }

// span opens a span on the attached tracer; with no tracer it returns a nil
// span whose methods are no-ops.
func (p *Pipeline) span(name string) *obs.Span {
	return p.tracer.Start(name)
}

// spanCtx opens a span and returns a context carrying it, so parallel
// stages downstream can attribute per-worker child spans to it.
func (p *Pipeline) spanCtx(ctx context.Context, name string) (context.Context, *obs.Span) {
	sp := p.tracer.Start(name)
	return obs.ContextWithSpan(ctx, sp), sp
}

// workers normalizes the pipeline's Workers knob.
func (p *Pipeline) workers() int {
	return par.Workers(p.Workers)
}

// String names the scale for logs and manifests.
func (s Scale) String() string {
	switch s {
	case ScaleTiny:
		return "tiny"
	case ScaleLarge:
		return "large"
	default:
		return "default"
	}
}

// worldConfig resolves the topology: explicit tiny/large scales override
// the spec's topology section with the literal test/large worlds, so every
// scenario can run golden-gated at test scale.
func (p *Pipeline) worldConfig() inet.Config {
	var cfg inet.Config
	switch p.Scale {
	case ScaleTiny:
		cfg = inet.TinyConfig(p.Seed)
	case ScaleLarge:
		cfg = inet.LargeConfig(p.Seed)
	default:
		cfg = inet.ConfigFromScenario(p.spec(), p.Seed)
	}
	// Parallelism knobs only — neither changes the world's bytes.
	cfg.Shards = p.Shards
	cfg.GenWorkers = p.Workers
	return cfg
}

// buildWorld synthesizes (or, with SnapshotPath set, streams back) one
// fresh world for an epoch.
func (p *Pipeline) buildWorld() (*inet.World, error) {
	w, fromDisk, err := inet.LoadOrGenerate(p.SnapshotPath, p.worldConfig(), p.spec().Hash())
	if err != nil {
		return nil, fmt.Errorf("offnetrisk: build world: %w", err)
	}
	if fromDisk {
		mSnapshotLoads.Get().Inc()
	}
	return w, nil
}

// deployment returns (building if needed) the world and deployment for an
// epoch. Deployments mutate their world, so each epoch gets a fresh world
// generated from the same seed.
func (p *Pipeline) deployment(epoch hypergiant.Epoch) (*inet.World, *hypergiant.Deployment, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if d, ok := p.deps[epoch]; ok {
		return p.worlds[epoch], d, nil
	}
	sp := p.span(fmt.Sprintf("world/build-%d", epoch))
	defer sp.End()
	w, err := p.buildWorld()
	if err != nil {
		return nil, nil, err
	}
	d, err := hypergiant.Deploy(w, epoch, hypergiant.DeployConfigFromScenario(p.spec(), p.Seed))
	if err != nil {
		return nil, nil, fmt.Errorf("offnetrisk: deploy epoch %d: %w", epoch, err)
	}
	sp.SetAttr("isps", len(w.ISPs))
	sp.SetAttr("servers", len(d.Servers))
	p.worlds[epoch] = w
	p.deps[epoch] = d
	return w, d, nil
}

// World2023 exposes the 2023 world and deployment for advanced use (custom
// scenarios, examples).
func (p *Pipeline) World2023() (*inet.World, *hypergiant.Deployment, error) {
	return p.deployment(hypergiant.Epoch2023)
}

// World2021 exposes the 2021 snapshot.
func (p *Pipeline) World2021() (*inet.World, *hypergiant.Deployment, error) {
	return p.deployment(hypergiant.Epoch2021)
}
