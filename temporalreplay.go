package offnetrisk

import (
	"context"

	"offnetrisk/internal/capacity"
	"offnetrisk/internal/hypergiant"
	"offnetrisk/internal/obs"
	"offnetrisk/internal/scenario"
	"offnetrisk/internal/temporal"
)

// TemporalReplayContext runs the discrete-event engine over the pipeline's
// 2023 deployment: hours of shared clock, the scenario-calibrated capacity
// model, and an optional event schedule (nil = diurnal steady state). The
// optional sink receives every trajectory event live on the -events stream.
// The trajectory — and therefore its digest — depends only on (seed, scale,
// scenario, hours, schedule): workers, shards and chaos never reach the
// engine.
func (p *Pipeline) TemporalReplayContext(ctx context.Context, hours int, sched *scenario.Schedule, sink *obs.EventSink) (*temporal.Trajectory, error) {
	root := p.span("temporal-replay")
	defer root.End()
	_, d, err := p.deployment(hypergiant.Epoch2023)
	if err != nil {
		return nil, err
	}
	m := capacity.Build(d, capacity.ConfigFromScenario(p.spec(), p.Seed))
	eng, err := temporal.New(m, d, sched, temporal.Config{Hours: hours, Sink: sink})
	if err != nil {
		return nil, err
	}
	traj, err := eng.Run(ctx)
	if err != nil {
		return nil, err
	}
	root.SetAttr("hours", hours)
	root.SetAttr("events", len(traj.Events))
	root.SetAttr("steps", len(traj.Steps))
	return traj, nil
}
