package offnetrisk

import (
	"runtime"
	"strings"
	"testing"
	"time"

	"offnetrisk/internal/obs"
)

// runAll executes every experiment and concatenates the deterministic
// renderings — the exact bytes REPORT.md is built from.
func runAll(t *testing.T, p *Pipeline) string {
	t.Helper()
	var b strings.Builder
	t1, err := p.Table1()
	if err != nil {
		t.Fatal(err)
	}
	b.WriteString(t1.String())
	col, err := p.Colocation()
	if err != nil {
		t.Fatal(err)
	}
	b.WriteString(col.String())
	ps, err := p.PeeringSurvey()
	if err != nil {
		t.Fatal(err)
	}
	b.WriteString(ps.String())
	cs, err := p.CapacityStudy()
	if err != nil {
		t.Fatal(err)
	}
	b.WriteString(cs.String())
	cas, err := p.CascadeStudy()
	if err != nil {
		t.Fatal(err)
	}
	b.WriteString(cas.String())
	mp, err := p.MappingStudy()
	if err != nil {
		t.Fatal(err)
	}
	b.WriteString(mp.String())
	mit, err := p.MitigationStudy()
	if err != nil {
		t.Fatal(err)
	}
	b.WriteString(mit.String())
	return b.String()
}

// TestInstrumentationDeterminism is the zero-perturbation guard: attaching a
// tracer must not change a single byte of any experiment's output, and
// neither may the worker count — the parallel substrate merges results in
// input order and every task derives its own RNG substream, so Workers
// trades wall-clock time only.
func TestInstrumentationDeterminism(t *testing.T) {
	plain := runAll(t, NewPipeline(42, ScaleTiny))

	instrumented := NewPipeline(42, ScaleTiny)
	tr := obs.NewTracer()
	instrumented.Instrument(tr)
	traced := runAll(t, instrumented)

	if plain != traced {
		t.Fatalf("instrumented run diverged from plain run:\nplain:\n%s\ninstrumented:\n%s", plain, traced)
	}
	if len(tr.Roots()) == 0 {
		t.Fatal("instrumented run recorded no spans")
	}

	// Timeline recording (the -trace flag) is one more observability layer
	// that must stay byte-transparent, at any worker count.
	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		p := NewPipeline(42, ScaleTiny)
		p.Workers = workers
		ttr := obs.NewTracer()
		ttr.EnableTimeline()
		p.Instrument(ttr)
		if got := runAll(t, p); got != plain {
			t.Fatalf("Workers=%d with timeline recording diverged from the default run", workers)
		}
		if err := obs.ValidateTrace(obs.BuildTrace(ttr)); err != nil {
			t.Fatalf("Workers=%d trace export failed schema validation: %v", workers, err)
		}
	}

	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		p := NewPipeline(42, ScaleTiny)
		p.Workers = workers
		if got := runAll(t, p); got != plain {
			t.Fatalf("Workers=%d diverged from the default run", workers)
		}
	}
}

// TestConformanceWorkerDeterminism proves the full conformance suite — every
// experiment plus the sensitivity sweeps — renders byte-identically across
// worker counts, instrumented or not.
func TestConformanceWorkerDeterminism(t *testing.T) {
	render := func(workers int) string {
		p := NewPipeline(42, ScaleTiny)
		p.Workers = workers
		p.Instrument(obs.NewTracer())
		suite, err := p.Conformance()
		if err != nil {
			t.Fatal(err)
		}
		return suite.Markdown()
	}
	serial := render(1)
	for _, workers := range []int{4, runtime.GOMAXPROCS(0)} {
		if got := render(workers); got != serial {
			t.Fatalf("Workers=%d conformance output diverged from Workers=1:\n%s\nvs\n%s",
				workers, got, serial)
		}
	}
}

// TestPipelineSpanCoverage checks that every experiment method records a root
// span with at least one child stage when instrumented.
func TestPipelineSpanCoverage(t *testing.T) {
	p := NewPipeline(42, ScaleTiny)
	tr := obs.NewTracer()
	p.Instrument(tr)
	runAll(t, p)

	want := []string{
		"table1", "colocation", "peering-survey", "capacity-study",
		"cascade-study", "mapping-study", "mitigation-study",
	}
	snaps := tr.Snapshot(time.Time{})
	byName := make(map[string]obs.SpanSnapshot, len(snaps))
	for _, s := range snaps {
		byName[s.Name] = s
	}
	for _, name := range want {
		s, ok := byName[name]
		if !ok {
			t.Errorf("missing root span %q", name)
			continue
		}
		if len(s.Children) == 0 {
			t.Errorf("root span %q has no child stages", name)
		}
		if !s.Ended {
			t.Errorf("root span %q never ended", name)
		}
	}
}
