# Build/verify entry points. `make check` is the full gate: vet + race tests.

GO ?= go

.PHONY: build test vet race bench bench-json bench-smoke bench-compare check report

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Machine-readable bench record: every bench as test2json events, stamped
# with the run date so successive runs accumulate as an experiment log.
# The workers=1 vs workers=4 sub-benches of BenchmarkTable2Colocation and
# BenchmarkSec421PeeringSurvey record the parallel-substrate speedup.
bench-json:
	@f=BENCH_$$(date +%Y-%m-%d).json; n=1; \
	while [ -e $$f ]; do n=$$((n+1)); f=BENCH_$$(date +%Y-%m-%d).$$n.json; done; \
	$(GO) test -run '^$$' -bench . -benchmem -json ./... > $$f && echo "wrote $$f"

# One iteration of every benchmark — a CI smoke test so benches can't bitrot.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime=1x ./...

# Benchstat-style ratios between the two most recent BENCH_*.json records.
bench-compare:
	@set -- $$(ls -t BENCH_*.json 2>/dev/null | head -2); \
	if [ $$# -lt 2 ]; then echo "bench-compare: need two BENCH_*.json records" >&2; exit 1; fi; \
	$(GO) run ./cmd/benchcompare $$2 $$1

check: build vet race

# Full reproduction report with provenance manifest.
report:
	$(GO) run ./cmd/reproduce -out out -manifest out/manifest.json
