# Build/verify entry points. `make check` is the full gate: vet + race tests.

GO ?= go

.PHONY: build test vet race bench check report

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

check: build vet race

# Full reproduction report with provenance manifest.
report:
	$(GO) run ./cmd/reproduce -out out -manifest out/manifest.json
