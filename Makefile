# Build/verify entry points. `make check` is the full gate: vet + race tests.

GO ?= go

.PHONY: build test vet race race-obs bench bench-json bench-smoke bench-compare perf-gate profile check report runs-diff golden fuzz-smoke check-chaos golden-chaos check-scenarios golden-scenarios check-shards check-lineage golden-lineage check-temporal golden-temporal

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Focused race pass over the concurrency-heavy layers (quick pre-commit).
race-obs:
	$(GO) test -race ./internal/obs/... ./internal/par/...

bench:
	$(GO) test -bench=. -benchmem ./...

# Machine-readable bench record: every bench as test2json events, stamped
# with the run date so successive runs accumulate as an experiment log.
# The workers=1 vs workers=4 sub-benches of BenchmarkTable2Colocation and
# BenchmarkSec421PeeringSurvey record the parallel-substrate speedup.
bench-json:
	@f=BENCH_$$(date +%Y-%m-%d).json; n=1; \
	while [ -e $$f ]; do n=$$((n+1)); f=BENCH_$$(date +%Y-%m-%d).$$n.json; done; \
	$(GO) test -run '^$$' -bench . -benchmem -json ./... > $$f && echo "wrote $$f"

# One iteration of every benchmark — a CI smoke test so benches can't bitrot.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime=1x ./...

# Benchstat-style ratios between the two most recent BENCH_*.json records.
bench-compare:
	@set -- $$(ls -t BENCH_*.json 2>/dev/null | head -2); \
	if [ $$# -lt 2 ]; then echo "bench-compare: need two BENCH_*.json records" >&2; exit 1; fi; \
	$(GO) run ./cmd/benchcompare $$2 $$1

# Perf-trajectory gate: the newest BENCH_*.json record must keep the pinned
# kernel benchmarks (PairDistance, OpticsRun) within 1.3x of their best
# historical ns/op. Records order by the date in their filenames, so the gate
# is identical on every checkout.
perf-gate:
	$(GO) run ./cmd/benchcompare -gate BENCH_*.json

# Execution-timeline profile of a tiny run: Perfetto trace + critical-path /
# worker-utilization analysis printed to stdout.
profile:
	$(GO) run ./cmd/reproduce -tiny -seed 42 -out /tmp/profile-out \
		-manifest /tmp/profile-out/manifest.json -trace /tmp/profile-out/trace.json
	$(GO) run ./cmd/obsprofile -validate-trace /tmp/profile-out/trace.json /tmp/profile-out/manifest.json
	@echo "trace: /tmp/profile-out/trace.json (load in ui.perfetto.dev)"

# race-obs runs first so concurrency regressions in the observability and
# parallel substrates fail fast, before the full race suite; perf-gate is
# pure file analysis; check-scenarios proves every named scenario still
# reproduces its committed golden manifest; check-shards proves -shards is
# output-invariant and the huge tier generates and streams; check-lineage
# proves the provenance capture reproduces its committed digest and answers
# evidence queries.
check: build vet race-obs race perf-gate check-scenarios check-shards check-lineage check-temporal

# Full reproduction report with provenance manifest.
report:
	$(GO) run ./cmd/reproduce -out out -manifest out/manifest.json

# Determinism gate: reproduce at the golden seed/scale and diff the manifest
# against the checked-in reference. Fails (exit 1) on any counter, histogram
# bucket, funnel, or stage-sequence drift; wall times and gauges are
# informational.
runs-diff:
	$(GO) run ./cmd/reproduce -tiny -seed 42 -out /tmp/runsdiff-out -manifest /tmp/runsdiff-out/manifest.json
	$(GO) run ./cmd/runsdiff out/golden_manifest.json /tmp/runsdiff-out/manifest.json

# Regenerate the golden manifest (after intentional metric/funnel changes;
# commit the result and say why in the commit message).
golden:
	$(GO) run ./cmd/reproduce -tiny -seed 42 -out /tmp/golden-out -manifest out/golden_manifest.json

# Short live-fuzz pass over every fuzz target (one target per invocation, as
# the toolchain requires) — keeps the fuzz harnesses and seed corpora honest
# without burning CI time.
FUZZTIME ?= 5s
fuzz-smoke:
	$(GO) test ./internal/cert -run '^FuzzMatchPattern$$' -fuzz '^FuzzMatchPattern$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/cert -run '^FuzzFingerprint$$' -fuzz '^FuzzFingerprint$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/offnetmap -run '^FuzzRuleMatches$$' -fuzz '^FuzzRuleMatches$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/rdns -run '^FuzzExtractMetro$$' -fuzz '^FuzzExtractMetro$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/rdns -run '^FuzzLearnedExtract$$' -fuzz '^FuzzLearnedExtract$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/scenario -run '^FuzzParseSchedule$$' -fuzz '^FuzzParseSchedule$$' -fuzztime $(FUZZTIME)

# Chaos determinism gate: reproduce under the heavy fault profile at the
# golden seeds and diff against the checked-in degraded reference. The run
# must exit 0 (degraded, not failed) and drift-free.
check-chaos:
	$(GO) run ./cmd/reproduce -tiny -seed 42 -chaos heavy -chaos-seed 7 -out /tmp/chaosdiff-out -manifest /tmp/chaosdiff-out/manifest.json
	$(GO) run ./cmd/runsdiff out/golden_chaos_manifest.json /tmp/chaosdiff-out/manifest.json

# Regenerate the chaos golden manifest (same rules as `make golden`).
golden-chaos:
	$(GO) run ./cmd/reproduce -tiny -seed 42 -chaos heavy -chaos-seed 7 -out /tmp/golden-chaos-out -manifest out/golden_chaos_manifest.json

# The scenario matrix: every distinctive named scenario, golden-gated at test
# scale. The registry's tiny/large entries are pure topology aliases — at
# -tiny their runs are byte-identical to default's, so gating them would
# commit three copies of the same golden.
SCENARIOS ?= default open-connect-everywhere ios-flash-crowd meta-cdn ocdn

# Scenario determinism gate: reproduce each named scenario at the golden
# seed/scale and diff its manifest (scenario name + spec hash included)
# against the checked-in per-scenario reference.
check-scenarios:
	@for s in $(SCENARIOS); do \
		echo "== scenario $$s"; \
		$(GO) run ./cmd/reproduce -scenario $$s -tiny -seed 42 \
			-out /tmp/scenario-$$s -manifest /tmp/scenario-$$s/manifest.json || exit 1; \
		$(GO) run ./cmd/runsdiff out/golden_scenario_$$s.json /tmp/scenario-$$s/manifest.json || exit 1; \
	done

# Shard gate, two halves. (1) Output-invariance: the golden tiny reproduce
# re-run with -shards 4 must still match the committed golden manifest — if
# the shard knob ever leaks into results, this catches it against the same
# reference runs-diff uses. (2) Huge smoke: generate the huge tier
# (generation only, no deployment), spill it to a snapshot, and stream it
# back — bounded wall-clock proof that 50k+-entity worlds build and load.
check-shards:
	$(GO) run ./cmd/reproduce -tiny -seed 42 -shards 4 -out /tmp/sharddiff-out -manifest /tmp/sharddiff-out/manifest.json
	$(GO) run ./cmd/runsdiff out/golden_manifest.json /tmp/sharddiff-out/manifest.json
	@rm -f /tmp/huge-smoke.ofnw
	$(GO) run ./cmd/offnetgen -scenario huge -seed 42 -gen-only -snapshot /tmp/huge-smoke.ofnw
	$(GO) run ./cmd/offnetgen -scenario huge -seed 42 -gen-only -snapshot /tmp/huge-smoke.ofnw

# Lineage determinism gate: reproduce at the golden seed/scale with the
# provenance recorder on, diff the manifest (lineage_digest + per-stage
# decision counts included) against the checked-in lineage reference, and
# smoke-query the capture with cmd/explain — a populated Table 1 cell must
# come back with its evidence chain (explain exits 1 on no match).
check-lineage:
	$(GO) run ./cmd/reproduce -tiny -seed 42 -out /tmp/lineage-out \
		-manifest /tmp/lineage-out/manifest.json -lineage /tmp/lineage-out/lineage.jsonl
	$(GO) run ./cmd/runsdiff out/golden_lineage_manifest.json /tmp/lineage-out/manifest.json
	$(GO) run ./cmd/explain -lineage /tmp/lineage-out/lineage.jsonl -isp 10000 -hg Akamai > /dev/null
	$(GO) run ./cmd/explain -lineage /tmp/lineage-out/lineage.jsonl -list

# Regenerate the lineage golden manifest (same rules as `make golden`).
golden-lineage:
	$(GO) run ./cmd/reproduce -tiny -seed 42 -out /tmp/golden-lineage-out \
		-manifest out/golden_lineage_manifest.json -lineage /tmp/golden-lineage-out/lineage.jsonl

# Temporal determinism gate: replay the committed seed-42 flash-crowd
# schedule through the discrete-event engine and diff the manifest — the
# trajectory digest rides the same runsdiff contract as counters and
# funnels — then re-run at -workers 4 to prove the digest is byte-identical
# at any worker count.
check-temporal:
	$(GO) run ./cmd/reproduce -tiny -seed 42 -hours 24 -schedule schedules/ios-flash-crowd.json \
		-out /tmp/temporal-out -manifest /tmp/temporal-out/manifest.json
	$(GO) run ./cmd/runsdiff out/golden_temporal_manifest.json /tmp/temporal-out/manifest.json
	$(GO) run ./cmd/reproduce -tiny -seed 42 -workers 4 -hours 24 -schedule schedules/ios-flash-crowd.json \
		-out /tmp/temporal-out-w4 -manifest /tmp/temporal-out-w4/manifest.json
	$(GO) run ./cmd/runsdiff out/golden_temporal_manifest.json /tmp/temporal-out-w4/manifest.json

# Regenerate the temporal golden manifest (same rules as `make golden`).
golden-temporal:
	$(GO) run ./cmd/reproduce -tiny -seed 42 -hours 24 -schedule schedules/ios-flash-crowd.json \
		-out /tmp/golden-temporal-out -manifest out/golden_temporal_manifest.json

# Regenerate the per-scenario golden manifests (same rules as `make golden`:
# commit the results and say why in the commit message).
golden-scenarios:
	@for s in $(SCENARIOS); do \
		echo "== scenario $$s"; \
		$(GO) run ./cmd/reproduce -scenario $$s -tiny -seed 42 \
			-out /tmp/golden-scenario-$$s -manifest out/golden_scenario_$$s.json || exit 1; \
	done
