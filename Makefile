# Build/verify entry points. `make check` is the full gate: vet + race tests.

GO ?= go

.PHONY: build test vet race bench bench-json check report

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Machine-readable bench record: every bench as test2json events, stamped
# with the run date so successive runs accumulate as an experiment log.
# The workers=1 vs workers=4 sub-benches of BenchmarkTable2Colocation and
# BenchmarkSec421PeeringSurvey record the parallel-substrate speedup.
bench-json:
	$(GO) test -run '^$$' -bench . -benchmem -json ./... > BENCH_$$(date +%Y-%m-%d).json

check: build vet race

# Full reproduction report with provenance manifest.
report:
	$(GO) run ./cmd/reproduce -out out -manifest out/manifest.json
