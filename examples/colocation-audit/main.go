// Colocation audit: the view from one ISP's network operations team.
//
// The paper argues ISPs have operational reasons to colocate hypergiant
// offnets (§3.1) but thereby concentrate risk (§3.3). This example audits a
// single ISP: which facilities host which hypergiants, how much of its
// users' traffic the busiest facility can serve, and what a failure of that
// facility would do.
//
//	go run ./examples/colocation-audit
package main

import (
	"fmt"
	"log"
	"sort"

	"offnetrisk"
	"offnetrisk/internal/capacity"
	"offnetrisk/internal/cascade"
	"offnetrisk/internal/inet"
	"offnetrisk/internal/traffic"
)

func main() {
	log.SetFlags(0)
	p := offnetrisk.NewPipeline(7, offnetrisk.ScaleTiny)
	w, d, err := p.World2023()
	if err != nil {
		log.Fatal(err)
	}

	// Audit the hosting ISP with the most users.
	hosts := d.HostingISPs()
	sort.Slice(hosts, func(i, j int) bool {
		return w.ISPs[hosts[i]].Users > w.ISPs[hosts[j]].Users
	})
	as := hosts[0]
	isp := w.ISPs[as]
	fmt.Printf("audit of %s (AS%d, %s): %.1fM users, %d facilities\n\n",
		isp.Name, as, isp.Country, isp.Users/1e6, len(isp.Facilities))

	// Facility inventory: hypergiants and racks.
	type facInfo struct {
		hgs     map[traffic.HG]bool
		servers int
		racks   map[int]map[traffic.HG]bool
	}
	inv := make(map[inet.FacilityID]*facInfo)
	for _, s := range d.ServersIn(as) {
		fi := inv[s.Facility]
		if fi == nil {
			fi = &facInfo{hgs: map[traffic.HG]bool{}, racks: map[int]map[traffic.HG]bool{}}
			inv[s.Facility] = fi
		}
		fi.hgs[s.HG] = true
		fi.servers++
		if fi.racks[s.Rack] == nil {
			fi.racks[s.Rack] = map[traffic.HG]bool{}
		}
		fi.racks[s.Rack][s.HG] = true
	}

	ids := make([]inet.FacilityID, 0, len(inv))
	for id := range inv {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		fi := inv[id]
		var hgs []traffic.HG
		for _, hg := range traffic.All {
			if fi.hgs[hg] {
				hgs = append(hgs, hg)
			}
		}
		share := traffic.CombinedFacilityShare(hgs)
		sharedRacks := 0
		for _, rackHGs := range fi.racks {
			if len(rackHGs) >= 2 {
				sharedRacks++
			}
		}
		fmt.Printf("facility %-22s %d offnet servers, hypergiants: %v\n",
			w.Facilities[id].Name(), fi.servers, hgs)
		fmt.Printf("  could serve %.0f%% of a user's total traffic; %d racks shared by multiple hypergiants\n",
			100*share, sharedRacks)
	}

	// What happens if the busiest facility fails at peak?
	fid, nHGs := cascade.TopFacility(d, as)
	m := capacity.Build(d, capacity.DefaultConfig(7))
	sc := cascade.DefaultScenario()
	sc.FailFacilities = map[inet.FacilityID]bool{fid: true}
	rep := cascade.Simulate(m, d, sc)

	fmt.Printf("\nfailure drill: %s goes dark at peak hour\n", w.Facilities[fid].Name())
	fmt.Printf("  %d hypergiants lose their local offnets simultaneously\n", nHGs)
	var lostOffnet, spill float64
	for i, f := range rep.Flows {
		if f.ISP != as {
			continue
		}
		lostOffnet += rep.Baseline[i].Offnet - f.Offnet
		spill += f.SharedSpill() - rep.Baseline[i].SharedSpill()
	}
	fmt.Printf("  %.1f Gbps of locally served traffic lost; %.1f Gbps pushed onto shared IXP/transit paths\n",
		lostOffnet, spill)
	if n := len(rep.CongestedIXPs()) + len(rep.CongestedTransits()); n > 0 {
		fmt.Printf("  %d shared links congested; %d uninvolved ISPs (%.1fM users) see collateral damage\n",
			n, len(rep.CollateralISPs), rep.CollateralUsers(w)/1e6)
	} else {
		fmt.Printf("  shared paths absorbed the spill this time — headroom was %.0f%%\n",
			100*(sc.SharedHeadroom-1))
	}
}
