// Quickstart: build a seeded reproduction pipeline and run every experiment
// in the paper, printing each table and figure's data.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"offnetrisk"
)

func main() {
	log.SetFlags(0)

	// A pipeline owns one synthetic Internet per epoch, derived entirely
	// from the seed. ScaleTiny runs in about a second; use ScaleDefault for
	// statistics closer to the paper's dataset sizes.
	p := offnetrisk.NewPipeline(7, offnetrisk.ScaleTiny)

	// §2.2 / Table 1 — TLS-scan offnet discovery at two epochs.
	t1, err := p.Table1()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(t1)

	// §3.2 / Table 2, Figures 1–2 — latency clustering and colocation.
	col, err := p.Colocation()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(col)

	// §4.2.1 — cloud traceroute peering survey.
	ps, err := p.PeeringSurvey()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(ps)

	// §4.1 + §4.2.2 — capacity: lockdown replay, diurnal sweep, PNI census.
	cap, err := p.CapacityStudy()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(cap)

	// §3.3 + §4.3 — correlated failures and cascades.
	cas, err := p.CascadeStudy()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(cas)

	// §3.2 methodology note — why user→offnet mapping broke.
	mp, err := p.MappingStudy()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(mp)

	// §6 — the isolation mitigation, quantified.
	mit, err := p.MitigationStudy()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(mit)
}
