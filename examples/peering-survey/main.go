// Peering survey: run the §4.2.1 traceroute inference for all four
// hypergiants — something the paper could not do ("We cannot run
// measurements from Meta, Netflix, or Akamai"; it measured from Google
// Cloud only) but the simulation can, since every hypergiant's cloud is
// synthetic.
//
//	go run ./examples/peering-survey
package main

import (
	"fmt"
	"log"

	"offnetrisk"
	"offnetrisk/internal/traffic"
)

func main() {
	log.SetFlags(0)
	p := offnetrisk.NewPipeline(7, offnetrisk.ScaleTiny)

	fmt.Printf("%-8s %6s %6s %9s %11s %8s %9s\n",
		"HG", "hosts", "peer", "possible", "no-evidence", "via-IXP", "IXP-only")
	for _, hg := range traffic.All {
		res, err := p.PeeringSurveyFor(hg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s %6d %5.1f%% %8.1f%% %10.1f%% %7.1f%% %8.1f%%\n",
			res.Hypergiant, res.HostsTotal,
			res.PeerPct(), res.PossiblePct(), res.NoEvidencePct(),
			res.ViaIXPPct(), res.OnlyIXPPct())
	}
	fmt.Println("\npaper (Google only): 38.2% peer, 13.3% possible, 48.4% no evidence;")
	fmt.Println("62.2% of peers via an IXP, 42.5% only via an IXP")
}
