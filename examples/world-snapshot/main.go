// World snapshot: persist a synthetic Internet to JSON, restore it, verify
// the restoration is faithful, and run an analysis against the restored
// world — the workflow for sharing reproducible worlds between machines.
//
//	go run ./examples/world-snapshot
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"offnetrisk/internal/hypergiant"
	"offnetrisk/internal/inet"
	"offnetrisk/internal/offnetmap"
	"offnetrisk/internal/scan"
)

func main() {
	log.SetFlags(0)

	// Build and deploy a world.
	w := inet.Generate(inet.TinyConfig(7))
	d, err := hypergiant.Deploy(w, hypergiant.Epoch2023, hypergiant.DefaultDeployConfig(7))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated: %d ISPs, %d facilities, %d offnet servers\n",
		len(w.ISPs), len(w.Facilities), len(d.Servers))

	// Snapshot to disk.
	path := filepath.Join(os.TempDir(), "offnetrisk-world.json")
	data, err := json.Marshal(w)
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("snapshot: %d bytes → %s\n", len(data), path)

	// Restore and verify.
	raw, err := os.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	restored, err := inet.RestoreJSON(raw)
	if err != nil {
		log.Fatal(err)
	}
	if len(restored.ISPs) != len(w.ISPs) || len(restored.Facilities) != len(w.Facilities) {
		log.Fatalf("restore mismatch: %d/%d ISPs, %d/%d facilities",
			len(restored.ISPs), len(w.ISPs), len(restored.Facilities), len(w.Facilities))
	}
	fmt.Println("restored: all ISPs, facilities, and exchanges intact")

	// The restored world supports the same pipelines: run the offnet
	// inference against a scan of the ORIGINAL deployment using the
	// RESTORED world's IP-to-AS mapping — they must agree exactly.
	records, err := scan.Simulate(d, scan.DefaultConfig(7))
	if err != nil {
		log.Fatal(err)
	}
	orig := offnetmap.Infer(w, records, offnetmap.Rules2023())
	again := offnetmap.Infer(restored, records, offnetmap.Rules2023())
	fmt.Printf("inference on original world: %d offnets; on restored world: %d offnets\n",
		len(orig.Offnets), len(again.Offnets))
	if len(orig.Offnets) != len(again.Offnets) {
		log.Fatal("restored world produced different inference")
	}
	fmt.Println("snapshot round trip verified ✔")
	_ = os.Remove(path)
}
