// Flash crowd: walk through the §4.3 cascading-failure mechanism hour by
// hour. A viral event triples one hypergiant's demand during the evening
// peak while the most-colocated facilities are down for a bad software
// update — the paper's "perfect storm of overload and cascading failure".
//
//	go run ./examples/flashcrowd
package main

import (
	"fmt"
	"log"

	"offnetrisk"
	"offnetrisk/internal/capacity"
	"offnetrisk/internal/cascade"
	"offnetrisk/internal/inet"
	"offnetrisk/internal/traffic"
)

func main() {
	log.SetFlags(0)
	p := offnetrisk.NewPipeline(7, offnetrisk.ScaleTiny)
	w, d, err := p.World2023()
	if err != nil {
		log.Fatal(err)
	}
	m := capacity.Build(d, capacity.DefaultConfig(7))

	// A bad update takes out the top facility of the five biggest hosts.
	failed := make(map[inet.FacilityID]bool)
	for i, as := range d.HostingISPs() {
		if i >= 5 {
			break
		}
		fid, _ := cascade.TopFacility(d, as)
		failed[fid] = true
	}

	fmt.Println("flash crowd on Netflix + bad update at 5 multi-hypergiant facilities")
	fmt.Printf("%4s %8s %10s %12s %11s %10s\n",
		"hour", "demand", "offnet%", "interdomain%", "congested", "collateral")
	for hour := 16; hour <= 23; hour++ {
		sc := cascade.DefaultScenario()
		sc.DemandMult = capacity.Diurnal[hour]
		sc.Surge = map[traffic.HG]float64{traffic.Netflix: 3.0}
		sc.FailFacilities = failed
		sc.SharedHeadroom = 1.15
		rep := cascade.Simulate(m, d, sc)

		var demand, offnet, inter float64
		for _, f := range rep.Flows {
			demand += f.Demand
			offnet += f.Offnet
			inter += f.Interdomain()
		}
		congested := len(rep.CongestedIXPs()) + len(rep.CongestedTransits())
		fmt.Printf("%3dh %7.0fG %9.1f%% %11.1f%% %11d %10d\n",
			hour, demand, 100*offnet/demand, 100*inter/demand,
			congested, len(rep.CollateralISPs))
	}

	// Peak-hour detail.
	sc := cascade.DefaultScenario()
	sc.Surge = map[traffic.HG]float64{traffic.Netflix: 3.0}
	sc.FailFacilities = failed
	sc.SharedHeadroom = 1.15
	rep := cascade.Simulate(m, d, sc)
	fmt.Printf("\nat peak: %d hypergiants affected by the facility failures (%v)\n",
		len(rep.HGsImpacted), rep.HGsImpacted)
	fmt.Printf("direct users: %.1fM; collateral: %d ISPs / %.1fM users\n",
		rep.DirectUsers(w)/1e6, len(rep.CollateralISPs), rep.CollateralUsers(w)/1e6)
	for _, id := range rep.CongestedIXPs() {
		l := rep.IXPLoad[id]
		fmt.Printf("congested exchange %s: %.0f Gbps offered / %.0f Gbps capacity (%.0f%%)\n",
			w.IXPs[id].Name, l.LoadGbps, l.CapacityGbps, 100*l.Utilization())
	}
	for _, as := range rep.CongestedTransits() {
		l := rep.TransitLoad[as]
		fmt.Printf("congested transit %s: %.0f Gbps / %.0f Gbps (%.0f%%)\n",
			w.ISPs[as].Name, l.LoadGbps, l.CapacityGbps, 100*l.Utilization())
	}
}
