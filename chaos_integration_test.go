package offnetrisk

import (
	"bytes"
	"encoding/json"
	"fmt"
	"runtime"
	"testing"

	"offnetrisk/internal/chaos"
	"offnetrisk/internal/obs"
	"offnetrisk/internal/offnetmap"
	"offnetrisk/internal/tracert"
)

// chaosState runs the chaos-sensitive experiments at one worker count and
// serializes everything the run manifest would carry: the rendered results,
// the funnel accounting, and the degradation verdict. With timeline set, the
// run additionally records fault instants (the -trace path) — which must not
// change a byte of the serialized state.
func chaosState(t *testing.T, workers int, timeline bool) []byte {
	t.Helper()
	obs.Default.Reset()
	p := NewPipeline(42, ScaleTiny)
	p.Workers = workers
	prof, err := chaos.ParseProfile("heavy")
	if err != nil {
		t.Fatal(err)
	}
	p.Chaos = chaos.New(prof, 7)
	if timeline {
		tr := obs.NewTracer()
		tr.EnableTimeline()
		p.Instrument(tr)
	}

	coloc, err := p.Colocation()
	if err != nil {
		t.Fatal(err)
	}
	t1, err := p.Table1()
	if err != nil {
		t.Fatal(err)
	}
	peer, err := p.PeeringSurvey()
	if err != nil {
		t.Fatal(err)
	}

	snaps := obs.Default.FunnelSnapshots()
	for _, s := range snaps {
		if !s.Balanced() {
			t.Fatalf("workers=%d: funnel %s unbalanced: %+v", workers, s.Name, s)
		}
	}
	blob, err := json.Marshal(struct {
		Rendered string
		Funnels  []obs.FunnelSnapshot
		Degraded []string
	}{
		fmt.Sprint(coloc) + fmt.Sprint(t1) + fmt.Sprint(peer),
		snaps,
		chaos.DegradedStages(snaps, chaos.DefaultThresholds()),
	})
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

// TestChaosWorkerDeterminism is the chaos counterpart of
// TestConformanceWorkerDeterminism: with a heavy injector installed, every
// experiment rendering, every funnel, and the degradation verdict must be
// byte-identical at any worker count.
func TestChaosWorkerDeterminism(t *testing.T) {
	ref := chaosState(t, 1, false)
	for _, workers := range []int{4, runtime.GOMAXPROCS(0)} {
		if got := chaosState(t, workers, false); !bytes.Equal(ref, got) {
			t.Fatalf("chaos pipeline state diverged between workers=1 and workers=%d", workers)
		}
	}
	// Fault-instant recording (-trace under -chaos) is a pure side channel:
	// same bytes with the timeline live.
	for _, workers := range []int{1, 4} {
		if got := chaosState(t, workers, true); !bytes.Equal(ref, got) {
			t.Fatalf("workers=%d with timeline recording diverged from the plain chaos run", workers)
		}
	}
}

// TestChaosOffPipelineUnchanged pins the -chaos off acceptance criterion at
// the pipeline level: an explicit nil injector renders byte-identically to a
// pipeline that never heard of chaos.
func TestChaosOffPipelineUnchanged(t *testing.T) {
	run := func(withField bool) string {
		obs.Default.Reset()
		p := NewPipeline(42, ScaleTiny)
		if withField {
			off, err := chaos.ParseProfile("off")
			if err != nil {
				t.Fatal(err)
			}
			p.Chaos = chaos.New(off, 7) // nil: profile injects nothing
		}
		res, err := p.Colocation()
		if err != nil {
			t.Fatal(err)
		}
		return fmt.Sprint(res)
	}
	if run(false) != run(true) {
		t.Fatal("chaos-off pipeline output differs from a clean pipeline")
	}
}

// TestChaosSeedChangesFaults: two chaos seeds must not inject the same
// fault pattern (the flag is live), while the same seed reproduces exactly.
func TestChaosSeedChangesFaults(t *testing.T) {
	render := func(chaosSeed int64) string {
		obs.Default.Reset()
		p := NewPipeline(42, ScaleTiny)
		prof, err := chaos.ParseProfile("heavy")
		if err != nil {
			t.Fatal(err)
		}
		p.Chaos = chaos.New(prof, chaosSeed)
		res, err := p.Colocation()
		if err != nil {
			t.Fatal(err)
		}
		return fmt.Sprint(res)
	}
	a, b := render(7), render(8)
	if a == b {
		t.Fatal("different chaos seeds produced identical colocation results")
	}
	if again := render(7); a != again {
		t.Fatal("same chaos seed did not reproduce")
	}
}

// Interface guards: the chaos hooks the pipelines thread must stay nil-safe,
// or a clean run would need injector plumbing everywhere.
var (
	_ = offnetmap.InferChaos
	_ = tracert.Config{}.Chaos
)
