package offnetrisk_test

import (
	"fmt"

	"offnetrisk"
)

// ExampleNewPipeline shows the end-to-end Table 1 reproduction: TLS scans
// at both epochs, certificate inference, and the §2.2 growth numbers.
func ExampleNewPipeline() {
	p := offnetrisk.NewPipeline(7, offnetrisk.ScaleTiny)
	t1, err := p.Table1()
	if err != nil {
		panic(err)
	}
	for _, row := range t1.Rows {
		fmt.Printf("%s: %d -> %d ISPs (%+.1f%%)\n",
			row.Hypergiant, row.ISPs2021, row.ISPs2023, row.GrowthPct)
	}
	// Output:
	// Google: 42 -> 52 ISPs (+23.8%)
	// Netflix: 24 -> 32 ISPs (+33.3%)
	// Meta: 25 -> 28 ISPs (+12.0%)
	// Akamai: 12 -> 12 ISPs (+0.0%)
}

// ExamplePipeline_MappingStudy demonstrates the §3.2 methodology point:
// the 2013 DNS/ECS technique cannot map users to offnets under modern
// embedded-URL steering.
func ExamplePipeline_MappingStudy() {
	p := offnetrisk.NewPipeline(7, offnetrisk.ScaleTiny)
	res, err := p.MappingStudy()
	if err != nil {
		panic(err)
	}
	for _, row := range res.Era2023 {
		works := "works"
		if row.CoveragePct == 0 {
			works = "fails"
		}
		fmt.Printf("%s (%s): %s\n", row.Hypergiant, row.Mode, works)
	}
	// Output:
	// Google (embedded-url): fails
	// Netflix (embedded-url): fails
	// Meta (embedded-url): fails
	// Akamai (ecs-allowlist): works
}
