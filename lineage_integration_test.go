package offnetrisk

import (
	"reflect"
	"runtime"
	"strings"
	"testing"

	"offnetrisk/internal/chaos"
	"offnetrisk/internal/obs"
)

// lineageStages is every instrumented classification site, in canonical
// (sorted) order — the stage set a full tiny run must produce.
var lineageStages = []string{
	"cascade.mitigation",
	"coloc.cluster",
	"coloc.pairs",
	"offnetmap.classify",
	"ping.filter",
	"ping.isp_gate",
	"rdns.metro",
	"steer.mapping",
	"tracert.hops",
}

// lineageRun executes every experiment with a fresh registry and a fresh
// recorder, returning the recorder, the rendered experiment output, and the
// funnel snapshots of that run.
func lineageRun(t *testing.T, workers, shards int, profile string) (*obs.LineageRecorder, string, []obs.FunnelSnapshot) {
	t.Helper()
	obs.Default.Reset()
	lr := obs.NewLineageRecorder()
	obs.SetLineage(lr)
	defer obs.SetLineage(nil)
	p := NewPipeline(42, ScaleTiny)
	p.Workers = workers
	p.Shards = shards
	if profile != "" {
		prof, err := chaos.ParseProfile(profile)
		if err != nil {
			t.Fatal(err)
		}
		p.Chaos = chaos.New(prof, 7)
	}
	rendered := runAll(t, p)
	return lr, rendered, obs.Default.FunnelSnapshots()
}

// TestLineageReconciliation is the satellite guard: per-stage lineage counts
// must balance (in == kept + Σ drops) and must equal the corresponding
// funnel's accounting reason for reason — any site that drops data without
// recording why fails here, naming the stage.
func TestLineageReconciliation(t *testing.T) {
	lr, _, funnels := lineageRun(t, 0, 0, "")
	byName := make(map[string]obs.FunnelSnapshot, len(funnels))
	for _, f := range funnels {
		byName[f.Name] = f
	}

	stages := lr.StageCounts()
	var got []string
	for _, s := range stages {
		got = append(got, s.Stage)
	}
	if !reflect.DeepEqual(got, lineageStages) {
		t.Fatalf("instrumented stage set = %v, want %v", got, lineageStages)
	}

	for _, s := range stages {
		if !s.Balanced() {
			t.Errorf("stage %s unbalanced: in=%d kept=%d dropped=%d", s.Stage, s.In, s.Kept, s.Dropped())
		}
		f, ok := byName[s.Stage]
		if !ok {
			t.Errorf("stage %s has no matching funnel", s.Stage)
			continue
		}
		if f.In != s.In || f.Out != s.Kept {
			t.Errorf("stage %s: lineage in/kept=%d/%d but funnel in/out=%d/%d",
				s.Stage, s.In, s.Kept, f.In, f.Out)
		}
		reasons := make(map[string]bool)
		for _, d := range s.Drops {
			reasons[d.Reason] = true
		}
		for _, d := range f.Drops {
			reasons[d.Reason] = true
		}
		for r := range reasons {
			if s.DropN(r) != f.DropN(r) {
				t.Errorf("stage %s reason %s: lineage=%d funnel=%d",
					s.Stage, r, s.DropN(r), f.DropN(r))
			}
		}
	}
}

// TestLineageDigestDeterminism: the digest — and the full record set behind
// it — is byte-identical across worker and shard counts, because sampling is
// hash-admitted, never arrival-ordered.
func TestLineageDigestDeterminism(t *testing.T) {
	base, rendered, _ := lineageRun(t, 1, 0, "")
	digest := base.Digest()
	if digest == "" || len(base.Records()) == 0 {
		t.Fatal("baseline run recorded no lineage")
	}
	for _, workers := range []int{4, runtime.GOMAXPROCS(0)} {
		lr, r, _ := lineageRun(t, workers, 0, "")
		if lr.Digest() != digest {
			t.Fatalf("Workers=%d lineage digest diverged", workers)
		}
		if !reflect.DeepEqual(lr.Records(), base.Records()) {
			t.Fatalf("Workers=%d lineage records diverged", workers)
		}
		if r != rendered {
			t.Fatalf("Workers=%d experiment output diverged under lineage", workers)
		}
	}
	for _, shards := range []int{1, 4} {
		lr, _, _ := lineageRun(t, 0, shards, "")
		if lr.Digest() != digest {
			t.Fatalf("Shards=%d lineage digest diverged", shards)
		}
	}
}

// TestLineageChaosDeterminism: injected faults surface as chaos_* lineage
// records, and the capture stays byte-identical across worker counts at a
// fixed chaos seed.
func TestLineageChaosDeterminism(t *testing.T) {
	base, _, _ := lineageRun(t, 1, 0, "heavy")
	digest := base.Digest()
	var chaosRecords int
	for _, rec := range base.Records() {
		if strings.HasPrefix(rec.ReasonCode, "chaos_") {
			chaosRecords++
		}
	}
	if chaosRecords == 0 {
		t.Fatal("heavy chaos run produced no chaos_* lineage records")
	}
	for _, workers := range []int{4, runtime.GOMAXPROCS(0)} {
		lr, _, _ := lineageRun(t, workers, 0, "heavy")
		if lr.Digest() != digest {
			t.Fatalf("Workers=%d chaos lineage digest diverged", workers)
		}
	}
}

// TestLineageOffTransparency: recording must not change a byte of any
// experiment's output — lineage observes classification, it never
// participates in it.
func TestLineageOffTransparency(t *testing.T) {
	obs.SetLineage(nil)
	obs.Default.Reset()
	plain := runAll(t, NewPipeline(42, ScaleTiny))
	lr, withLineage, _ := lineageRun(t, 0, 0, "")
	if plain != withLineage {
		t.Fatal("enabling lineage changed experiment output")
	}
	if len(lr.Records()) == 0 {
		t.Fatal("lineage-on run retained no records")
	}
}
